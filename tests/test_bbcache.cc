/**
 * @file
 * Property tests for the decoded basic-block cache (isa/bb_cache.hh)
 * that backs FuncSim::runFast — the fast-forward engine of the
 * simpoint/sampled execution modes.
 *
 * The properties under test are the ones fast-forwarding correctness
 * rests on:
 *  - programs are immutable: building and exercising a cache never
 *    changes the program image;
 *  - the cache is a pure function of the Program: any two caches over
 *    the same program agree on every query, in any query order (no
 *    history dependence);
 *  - every block respects the block invariant (non-control interior,
 *    terminator or image end at the tail);
 *  - runFast() through the cache is architecturally identical to the
 *    step-by-step interpreter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "func/func_sim.hh"
#include "isa/bb_cache.hh"
#include "isa/program.hh"
#include "sim/logging.hh"
#include "wload/asm_builder.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using namespace vca::isa;
using vca::wload::AsmBuilder;

isa::Program
makeProgram(AsmBuilder &b, bool windowed = false)
{
    isa::Program p;
    p.name = "bbcache-test";
    p.windowedAbi = windowed;
    p.code = b.seal();
    p.finalize();
    return p;
}

/** A small program with branches, a loop, a call and straight line. */
isa::Program
branchyProgram()
{
    AsmBuilder b;
    const auto fn = b.newLabel();
    const auto loop = b.newLabel();
    const auto skip = b.newLabel();
    const auto done = b.newLabel();

    b.addi(4, regZero, 8);       // counter
    b.addi(5, regZero, 0);       // accumulator
    b.bind(loop);
    b.emitR(Opcode::Add, 5, 5, 4);
    b.branch(Opcode::Beq, 4, regZero, skip);
    b.addi(4, 4, -1);
    b.bind(skip);
    b.branch(Opcode::Bne, 4, regZero, loop);
    b.call(fn);
    b.jmp(done);
    b.bind(fn);
    b.addi(5, 5, 100);
    b.ret();
    b.bind(done);
    b.addi(5, 5, 1);
    b.halt();
    return makeProgram(b);
}

bool
isTerminator(const isa::StaticInst &si)
{
    return si.isControl() || si.isHalt;
}

/** The ground-truth block at pc, computed by direct scan. */
isa::BasicBlock
referenceBlock(const isa::Program &prog, Addr pc)
{
    isa::BasicBlock bb{pc, 0};
    Addr p = pc;
    while (true) {
        ++bb.length;
        if (p + 1 >= prog.size() || isTerminator(prog.inst(p)))
            break;
        ++p;
    }
    return bb;
}

} // namespace

TEST(BbCache, RequiresFinalizedProgram)
{
    AsmBuilder b;
    b.addi(4, regZero, 1);
    b.halt();
    isa::Program p;
    p.name = "unfinalized";
    p.code = b.seal(); // code present but never finalize()d
    EXPECT_THROW(isa::BbCache cache(p), PanicError);
}

TEST(BbCache, BlockInvariantHoldsEverywhere)
{
    const isa::Program prog = branchyProgram();
    isa::BbCache cache(prog);
    for (Addr pc = 0; pc < prog.size(); ++pc) {
        const isa::BasicBlock &bb = cache.blockAt(pc);
        ASSERT_EQ(bb.startPc, pc);
        ASSERT_GE(bb.length, 1u);
        // Interior instructions never transfer control; the block
        // ends at a terminator or at the image end.
        for (Addr p = pc; p + 1 < pc + bb.length; ++p)
            EXPECT_FALSE(isTerminator(prog.inst(p)))
                << "control instruction inside block at pc " << p;
        const Addr last = pc + bb.length - 1;
        EXPECT_TRUE(isTerminator(prog.inst(last)) ||
                    last + 1 == prog.size())
            << "block at " << pc << " ends at " << last
            << " without a terminator";
        const isa::BasicBlock ref = referenceBlock(prog, pc);
        EXPECT_EQ(bb.length, ref.length) << "pc " << pc;
    }
}

TEST(BbCache, PureFunctionOfProgramAnyQueryOrder)
{
    const isa::Program prog = branchyProgram();

    // Reference cache queried in ascending order.
    isa::BbCache forward(prog);
    std::vector<isa::BasicBlock> expect;
    for (Addr pc = 0; pc < prog.size(); ++pc)
        expect.push_back(forward.blockAt(pc));

    // Independent caches queried in other orders (descending and a
    // deterministic shuffle) must give identical answers: lookups are
    // history-independent.
    std::vector<Addr> pcs(prog.size());
    for (Addr pc = 0; pc < prog.size(); ++pc)
        pcs[pc] = pc;

    for (int order = 0; order < 2; ++order) {
        std::vector<Addr> qs = pcs;
        if (order == 0)
            std::reverse(qs.begin(), qs.end());
        else
            std::shuffle(qs.begin(), qs.end(),
                         std::mt19937_64(12345));
        isa::BbCache cache(prog);
        for (Addr pc : qs) {
            const isa::BasicBlock &bb = cache.blockAt(pc);
            EXPECT_EQ(bb.startPc, expect[pc].startPc)
                << "order " << order << " pc " << pc;
            EXPECT_EQ(bb.length, expect[pc].length)
                << "order " << order << " pc " << pc;
        }
        // Re-querying is stable too (memoized answers don't drift).
        for (Addr pc : pcs)
            EXPECT_EQ(cache.blockAt(pc).length, expect[pc].length);
    }
}

TEST(BbCache, MidBlockQueryCreatesShorterAlignedBlock)
{
    // A query into the middle of a discovered block answers with a
    // shorter block that ends on the same boundary, not with the
    // enclosing one.
    const isa::Program prog = branchyProgram();
    isa::BbCache cache(prog);
    const isa::BasicBlock head = cache.blockAt(0);
    ASSERT_GE(head.length, 2u) << "test program needs a multi-inst "
                                  "entry block";
    const isa::BasicBlock mid = cache.blockAt(1);
    EXPECT_EQ(mid.startPc, 1u);
    EXPECT_EQ(mid.startPc + mid.length, head.startPc + head.length);
}

TEST(BbCache, ProgramImageIsImmutable)
{
    isa::Program prog = branchyProgram();
    const std::vector<std::uint32_t> image = prog.code;
    isa::BbCache cache(prog);
    for (Addr pc = 0; pc < prog.size(); ++pc)
        cache.blockAt(pc);
    // Off-image queries too (decoded as HALT; must not grow the image).
    cache.blockAt(prog.size());
    cache.blockAt(prog.size() + 17);
    EXPECT_EQ(prog.code, image);
}

TEST(BbCache, OffImageQueryIsAHaltBlock)
{
    const isa::Program prog = branchyProgram();
    isa::BbCache cache(prog);
    const isa::BasicBlock &bb = cache.blockAt(prog.size() + 3);
    EXPECT_EQ(bb.startPc, prog.size() + 3);
    EXPECT_EQ(bb.length, 1u);
}

TEST(BbCache, RunFastMatchesStepInterpreter)
{
    // Architectural equivalence of the two interpreters on a real
    // benchmark binary, both ABIs, including a mid-run split to prove
    // runFast can stop and resume at arbitrary boundaries.
    for (const bool windowed : {false, true}) {
        const isa::Program &prog = *wload::cachedProgram(
            wload::profileByName("crafty"), windowed);

        mem::SparseMemory memA, memB;
        func::FuncSim fast(prog, memA);
        func::FuncSim slow(prog, memB);

        fast.runFast(10'000);
        fast.runFast(7'777); // arbitrary resume boundary
        slow.run(17'777);

        ASSERT_EQ(fast.pc(), slow.pc()) << "windowed=" << windowed;
        ASSERT_EQ(fast.halted(), slow.halted());
        EXPECT_EQ(fast.stats().insts, slow.stats().insts);
        EXPECT_EQ(fast.stats().loads, slow.stats().loads);
        EXPECT_EQ(fast.stats().stores, slow.stats().stores);
        for (RegIndex r = 0; r < isa::numIntRegs; ++r)
            ASSERT_EQ(fast.readIntReg(r), slow.readIntReg(r))
                << "r" << unsigned(r) << " windowed=" << windowed;
        const func::ArchState sa = fast.captureState();
        const func::ArchState sb = slow.captureState();
        ASSERT_EQ(sa.pc, sb.pc);
        ASSERT_EQ(sa.callDepth, sb.callDepth);
        ASSERT_EQ(sa.windowedAbi, sb.windowedAbi);
        for (unsigned r = 0; r < isa::numIntRegs; ++r)
            ASSERT_EQ(sa.intRegs[r], sb.intRegs[r]) << "r" << r;
        for (unsigned r = 0; r < isa::numFloatRegs; ++r)
            ASSERT_EQ(sa.fpRegs[r], sb.fpRegs[r]) << "f" << r;
    }
}
