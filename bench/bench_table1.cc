/**
 * @file
 * Table 1 reproduction: prints the baseline processor parameters as
 * actually instantiated by the simulator (not just as configured), so
 * any drift between the paper's table and the code is visible.
 */

#include <cstdio>

#include "bench_common.hh"
#include "cpu/ooo_cpu.hh"
#include "wload/generator.hh"

using namespace vca;

int
main()
{
    setQuiet(true);
    const cpu::CpuParams p =
        cpu::CpuParams::preset(cpu::RenamerKind::Baseline, 256);

    // Instantiate a core so every derived quantity is real.
    const isa::Program *prog = wload::cachedProgram(
        wload::profileByName("crafty"), false);
    cpu::OooCpu cpu(p, {prog});

    std::printf("== Table 1: Baseline processor parameters ==\n");
    std::printf("%-34s %u\n", "Machine Width", p.width);
    std::printf("%-34s %u\n", "Instruction Queue", p.iqSize);
    std::printf("%-34s %u\n", "Reorder Buffer", p.robSize);
    std::printf("%-34s %u cycles\n", "Pipeline depth (fetch to exec)",
                p.decodeDelay + 1 /*rename*/ + 1 /*dispatch-issue*/ +
                1 /*regread*/ + 1 /*exec*/ + 1 /*fetch*/);
    std::printf("%-34s %u R/W\n", "DL1 Cache Ports", p.dcachePorts);
    std::printf("%-34s %lluK %u-way %u cycle hit\n", "DL1 Cache",
                (unsigned long long)p.memParams.dl1.sizeBytes / 1024,
                p.memParams.dl1.assoc, p.memParams.dl1.hitLatency);
    std::printf("%-34s %lluK %u-way %u cycle hit\n", "IL1 Cache",
                (unsigned long long)p.memParams.il1.sizeBytes / 1024,
                p.memParams.il1.assoc, p.memParams.il1.hitLatency);
    std::printf("%-34s %lluM %u-way %u cycle hit\n", "L2 Cache",
                (unsigned long long)p.memParams.l2.sizeBytes /
                    (1024 * 1024),
                p.memParams.l2.assoc, p.memParams.l2.hitLatency);
    std::printf("%-34s %u cycles\n", "Memory Latency",
                p.memParams.memLatency);
    std::printf("%-34s %s\n", "Branch Predictor",
                "Hybrid (bimodal + gshare + chooser), 16-entry RAS");

    std::printf("\n== VCA configuration (Section 3) ==\n");
    for (unsigned threads : {1u, 2u, 4u}) {
        const unsigned assoc = cpu::CpuParams::vcaAssocForThreads(threads);
        std::printf("rename table, %u thread(s): %u sets x %u ways "
                    "= %u entries\n",
                    threads, p.vcaTableSets, assoc,
                    p.vcaTableSets * assoc);
    }
    std::printf("rename ports: %u (baseline uses %u)\n", p.vcaRenamePorts,
                3 * p.width);
    std::printf("ASTQ: %u entries, %u writes/cycle\n", p.astqEntries,
                p.astqWritesPerCycle);
    std::printf("RSID table: %u entries, %u-bit register-space offset\n",
                p.rsidEntries, p.rsidOffsetBits);
    bench::printCycleAccounting({cpu::RenamerKind::Baseline}, 256,
                                bench::defaultOptions());
    return bench::finishBench();
}
