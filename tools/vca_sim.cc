/**
 * @file
 * vca-sim: the standalone command-line simulator driver.
 *
 * Runs one of the bundled SPEC-like benchmarks (or an SMT mix) on any
 * of the four register-management architectures and dumps the full
 * statistics tree — the sim-outorder-style front door for users who
 * want to poke at configurations without writing C++.
 *
 * Examples:
 *   vca-sim --bench=crafty --arch=vca --regs=128
 *   vca-sim --bench=crafty,mesa,gap,gzip_graphic --arch=vca \
 *           --regs=192 --windows=true --insts=200000
 *   vca-sim --debug-flags=Commit,VcaCache --debug-file=run.log
 *   vca-sim --pipeview out.trace --stats-json stats.json \
 *           --interval 10000
 *   vca-sim --sweep-regs=64,128,192,256 --arch=all --bench=crafty
 *   vca-sim --list-benches
 *
 * --sweep-regs switches to sweep mode: every (arch, size) point runs
 * in parallel on the sweep runner (VCA_JOBS workers) and is memoized
 * under VCA_CACHE_DIR (default .vca-cache/), so repeating a sweep is
 * pure cache hits. See README "Running sweeps in parallel".
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "analysis/experiment.hh"
#include "analysis/runner.hh"
#include "analysis/sampling.hh"
#include "cpu/ooo_cpu.hh"
#include "cpu/tracer.hh"
#include "sim/options.hh"
#include "stats/host_stats.hh"
#include "telemetry/chrome_trace.hh"
#include "telemetry/pipeline_trace.hh"
#include "telemetry/reg_cache_analyzer.hh"
#include "trace/debug_flags.hh"
#include "trace/interval_stats.hh"
#include "trace/stats_json.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

using namespace vca;

namespace {

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

cpu::RenamerKind
parseArch(const std::string &name)
{
    if (name == "baseline")
        return cpu::RenamerKind::Baseline;
    if (name == "regwindow" || name == "convwindow")
        return cpu::RenamerKind::ConvWindow;
    if (name == "ideal")
        return cpu::RenamerKind::IdealWindow;
    if (name == "vca")
        return cpu::RenamerKind::Vca;
    fatal("unknown --arch '%s' (baseline|regwindow|ideal|vca)",
          name.c_str());
}

int
simMain(int argc, char **argv)
{
    Options opts;
    opts.add("bench", "crafty",
             "benchmark name, or a comma list for SMT (one per thread)");
    opts.add("arch", "vca", "baseline | regwindow | ideal | vca");
    opts.add("regs", "256", "physical register file size");
    opts.add("windows", "auto",
             "run windowed binaries: true | false | auto (by arch)");
    opts.add("insts", "200000", "instructions to commit per thread");
    opts.add("warmup", "20000", "warm-up instructions per thread");
    opts.add("mode", "detailed",
             "execution mode: detailed | simpoint (fast-forward to the "
             "best BBV region) | sampled (SMARTS-style periodic "
             "sampling)");
    opts.add("sample-period", "50000",
             "sampled mode: per-thread instructions between samples");
    opts.add("sample-quantum", "2000",
             "sampled mode: detailed instructions measured per sample");
    opts.add("sample-func-warm", "0",
             "non-detailed modes: functional warming instructions "
             "(branch predictor + caches) before each switch-in; "
             "0 = warm on every fast-forwarded instruction");
    opts.add("sample-detail-warm", "1000",
             "sampled mode: detailed warm-up instructions per sample");
    opts.add("dcache-ports", "2", "L1D ports");
    opts.add("astq", "4", "ASTQ entries (vca)");
    opts.add("table-assoc", "0",
             "vca rename-table associativity (0 = paper default)");
    opts.add("dead-hints", "false", "enable dead-value hints (vca)");
    opts.add("stats", "true", "dump the statistics tree");
    opts.add("trace", "0",
             "print a commit trace for the first N instructions");
    opts.add("debug-flags", "",
             "comma list of debug flags (prefix '-' disables; see "
             "--debug-help)");
    opts.add("debug-file", "",
             "write the debug trace to this file instead of stderr");
    opts.add("debug-help", "false", "list debug flags and exit");
    opts.add("pipeview", "",
             "write an O3PipeView pipeline trace to this file");
    opts.add("pipeview-insts", "0",
             "cap the pipeline trace at N instructions (0 = all)");
    opts.add("pipeview-instants", "true",
             "interleave telemetry instant records (window traps, "
             "spill/fill windows) into the pipeline trace");
    opts.add("chrome-trace", "",
             "write a Chrome trace-event (Perfetto) timeline to this "
             "file: simulated-time pipeline tracks, or host-time sweep "
             "worker tracks in --sweep-regs mode");
    opts.add("chrome-trace-insts", "20000",
             "cap Chrome-trace instruction slices at N committed "
             "instructions (0 = all)");
    opts.add("reg-telemetry", "false",
             "attach the register-cache analyzer (reg_cache stat "
             "group: compulsory/capacity/conflict fills, occupancy, "
             "burst histograms)");
    opts.add("stats-json", "",
             "write the statistics tree as JSON to this file");
    opts.add("interval", "0",
             "record an IPC/stall interval every N committed insts "
             "(exported via --stats-json)");
    opts.add("stat-sample-interval", "1",
             "sample ROB/IQ occupancy distributions every N cycles "
             "(1 = exact; larger trades histogram detail for speed)");
    opts.add("sweep-regs", "",
             "sweep mode: comma list of register file sizes, run in "
             "parallel with on-disk memoization (see VCA_JOBS / "
             "VCA_CACHE_DIR)");
    opts.add("isolate", "auto",
             "sweep mode: run each simulated point in a forked worker "
             "process so a crash costs one point, not the batch "
             "(true | false | auto = VCA_ISOLATE)");
    opts.add("point-timeout", "",
             "sweep mode: per-point deadline in seconds, enforced in "
             "isolate mode (empty = VCA_POINT_TIMEOUT)");
    opts.add("retries", "",
             "sweep mode: extra attempts after a worker crash or "
             "timeout (empty = VCA_RETRIES, default 2)");
    opts.add("resume", "false",
             "sweep mode: resume an interrupted sweep — simulate only "
             "points missing from the cache and replay journaled "
             "failures instead of retrying them");
    opts.add("list-benches", "false", "list bundled benchmarks and exit");
    opts.add("quiet", "true", "suppress warnings");
    opts.add("help", "false", "show this help");

    if (!opts.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", opts.error().c_str(),
                     opts.usage("vca-sim").c_str());
        return 1;
    }
    if (opts.getBool("help")) {
        std::fputs(opts.usage("vca-sim").c_str(), stdout);
        return 0;
    }
    setQuiet(opts.getBool("quiet"));

    if (opts.getBool("debug-help")) {
        std::fputs(trace::flagHelp().c_str(), stdout);
        return 0;
    }
    std::ofstream debugFile;
    if (!opts.get("debug-file").empty()) {
        debugFile.open(opts.get("debug-file"));
        if (!debugFile)
            fatal("cannot open --debug-file '%s'",
                  opts.get("debug-file").c_str());
        trace::setTraceStream(&debugFile);
    }
    if (!opts.get("debug-flags").empty())
        trace::setFlagsFromString(opts.get("debug-flags"));

    if (opts.getBool("list-benches")) {
        std::printf("%-16s %6s %10s %10s %8s\n", "name", "fp",
                    "footprint", "target", "windows?");
        for (const auto &p : wload::spec2000Profiles()) {
            std::printf("%-16s %6s %9lluK %9lluK %8s\n", p.name.c_str(),
                        p.isFloat ? "yes" : "no",
                        (unsigned long long)p.footprintBytes / 1024,
                        (unsigned long long)p.targetDynInsts / 1000,
                        p.callHeavy ? "table2" : "");
        }
        return 0;
    }

    const auto benchNames = splitCommas(opts.get("bench"));
    if (benchNames.empty())
        fatal("--bench must name at least one benchmark");
    const std::string windowsOpt = opts.get("windows");

    analysis::SimMode simMode;
    if (!analysis::parseSimMode(opts.get("mode"), simMode))
        fatal("unknown --mode '%s' (detailed|simpoint|sampled)",
              opts.get("mode").c_str());
    if (simMode != analysis::SimMode::Detailed) {
        // Instruction-granular observers (pipeline traces, commit
        // traces, DPRINTF, register telemetry) attach to the one
        // long-lived core a detailed run measures; the sampled modes
        // run many short cores, so combining them would be a silent
        // no-op at best. Error out naming the offending flag.
        // Aggregate observability (--stats, --stats-json, --interval,
        // --chrome-trace) works in every mode: sampled runs export the
        // sampling confidence layer instead of the cpu tree, and
        // chrome traces carry a sample-timeline lane.
        const char *conflict = nullptr;
        if (!opts.get("pipeview").empty())
            conflict = "--pipeview";
        else if (opts.wasSet("pipeview-instants"))
            conflict = "--pipeview-instants";
        else if (opts.getU64("trace") > 0)
            conflict = "--trace";
        else if (opts.getBool("reg-telemetry"))
            conflict = "--reg-telemetry";
        else if (!opts.get("debug-flags").empty())
            conflict = "--debug-flags";
        if (conflict) {
            fatal("%s requires --mode=detailed (it observes a single "
                  "detailed core)", conflict);
        }
    }

    // Sweep mode: the (arch x size) grid goes through the parallel
    // sweep runner, memoized on disk, instead of the single-run path.
    if (!opts.get("sweep-regs").empty()) {
        std::vector<unsigned> sizes;
        for (const std::string &s : splitCommas(opts.get("sweep-regs")))
            sizes.push_back(
                static_cast<unsigned>(std::strtoul(s.c_str(), nullptr,
                                                   10)));
        std::vector<cpu::RenamerKind> archs;
        if (opts.get("arch") == "all") {
            archs = {cpu::RenamerKind::Baseline,
                     cpu::RenamerKind::ConvWindow,
                     cpu::RenamerKind::IdealWindow,
                     cpu::RenamerKind::Vca};
        } else {
            archs = {parseArch(opts.get("arch"))};
        }

        analysis::RunOptions runOpts;
        runOpts.warmupInsts = opts.getU64("warmup");
        runOpts.measureInsts = opts.getU64("insts");
        runOpts.dcachePorts =
            static_cast<unsigned>(opts.getU64("dcache-ports"));
        runOpts.numThreads = static_cast<unsigned>(benchNames.size());
        runOpts.stopOnFirstThread = benchNames.size() > 1;
        runOpts.overrides.astqEntries =
            static_cast<unsigned>(opts.getU64("astq"));
        runOpts.overrides.vcaTableAssoc =
            static_cast<unsigned>(opts.getU64("table-assoc"));
        runOpts.overrides.vcaDeadValueHints =
            opts.getBool("dead-hints") ? 1 : -1;
        runOpts.regTelemetry = opts.getBool("reg-telemetry");
        runOpts.mode = simMode;
        runOpts.samplePeriodInsts = opts.getU64("sample-period");
        runOpts.sampleQuantumInsts = opts.getU64("sample-quantum");
        runOpts.sampleFuncWarmInsts = opts.getU64("sample-func-warm");
        runOpts.sampleDetailWarmInsts =
            opts.getU64("sample-detail-warm");

        std::vector<analysis::SweepPoint> points;
        for (cpu::RenamerKind arch : archs) {
            for (unsigned regs : sizes) {
                analysis::SweepPoint p;
                p.benches = benchNames;
                p.windowed = windowsOpt == "auto"
                    ? analysis::usesWindowedBinary(arch)
                    : (windowsOpt == "true" || windowsOpt == "1");
                p.kind = arch;
                p.physRegs = regs;
                p.opts = runOpts;
                points.push_back(std::move(p));
            }
        }
        auto &runner = analysis::SweepRunner::global();
        {
            // CLI flags override the environment-seeded defaults.
            analysis::RobustConfig robust = runner.robust();
            const std::string isolate = opts.get("isolate");
            if (isolate != "auto")
                robust.isolate = isolate == "true" || isolate == "1";
            if (!opts.get("point-timeout").empty()) {
                robust.pointTimeoutSec =
                    std::strtod(opts.get("point-timeout").c_str(),
                                nullptr);
            }
            if (!opts.get("retries").empty()) {
                robust.retries = static_cast<unsigned>(
                    opts.getU64("retries"));
            }
            if (opts.getBool("resume"))
                robust.resume = true;
            runner.setRobust(robust);
        }
        std::unique_ptr<telemetry::ChromeTraceWriter> chromeWriter;
        if (!opts.get("chrome-trace").empty()) {
            chromeWriter = std::make_unique<telemetry::ChromeTraceWriter>(
                opts.get("chrome-trace"));
            runner.setTraceWriter(chromeWriter.get());
        }
        const auto results = runner.run(points);
        if (chromeWriter) {
            runner.setTraceWriter(nullptr);
            if (chromeWriter->finish()) {
                inform("wrote chrome trace %s (%llu events)",
                       chromeWriter->path().c_str(),
                       (unsigned long long)chromeWriter->eventCount());
            }
        }

        std::printf("== Sweep: %s, %zu thread(s) ==\n",
                    opts.get("bench").c_str(), benchNames.size());
        if (simMode != analysis::SimMode::Detailed) {
            std::printf("mode=%s period=%llu quantum=%llu\n",
                        analysis::simModeName(simMode),
                        (unsigned long long)runOpts.samplePeriodInsts,
                        (unsigned long long)runOpts.sampleQuantumInsts);
        }
        std::printf("%-16s", "arch");
        for (unsigned regs : sizes)
            std::printf(" %9u", regs);
        std::printf("   (IPC)\n");
        size_t idx = 0;
        for (cpu::RenamerKind arch : archs) {
            std::printf("%-16s", cpu::renamerKindName(arch));
            for (size_t s = 0; s < sizes.size(); ++s) {
                const auto &m = results[idx++];
                if (m.ok)
                    std::printf(" %9.4f", m.ipc);
                else
                    std::printf(" %9s", "n/a");
            }
            std::printf("\n");
        }
        std::printf("cache: %.0f hits, %.0f misses (%s)\n",
                    runner.cacheHits.value(),
                    runner.cacheMisses.value(),
                    runner.cache().enabled()
                        ? runner.cache().dir().c_str()
                        : "disabled");
        const auto &host = stats::HostStats::global();
        if (host.simRuns.value() > 0) {
            std::printf("host: seconds=%.3f mips=%.3f "
                        "cycles_per_sec=%.0f runs=%.0f\n",
                        host.simSeconds.value(), host.simMips.value(),
                        host.cyclesPerSec.value(), host.simRuns.value());
        }
        // Zero in every detailed sweep, so detailed output is
        // byte-identical to earlier releases.
        if (host.funcRuns.value() > 0) {
            std::printf("func: seconds=%.3f insts=%.0f mips=%.3f\n",
                        host.funcSeconds.value(), host.funcInsts.value(),
                        host.funcMips.value());
        }
        // Points that exhausted their retry budget: the table above
        // shows them as n/a; spell out why on stderr and exit nonzero
        // so scripts notice a degraded sweep.
        const auto failures = runner.lastFailures();
        if (!failures.empty()) {
            std::fprintf(stderr,
                         "sweep: %zu point(s) failed after retries:\n",
                         failures.size());
            for (const auto &f : failures) {
                std::fprintf(stderr, "  %s: %s (%u attempt%s)\n",
                             f.label.c_str(), f.error.c_str(),
                             f.attempts, f.attempts == 1 ? "" : "s");
            }
            if (runner.cache().enabled()) {
                std::fprintf(
                    stderr, "sweep: failure manifest: %s\n",
                    analysis::manifestPath(runner.cache().dir(),
                                           analysis::batchHash(points))
                        .c_str());
            }
            return 3;
        }
        return 0;
    }

    const cpu::RenamerKind kind = parseArch(opts.get("arch"));
    const bool windowed = windowsOpt == "auto"
        ? analysis::usesWindowedBinary(kind)
        : (windowsOpt == "true" || windowsOpt == "1");

    std::vector<const isa::Program *> programs;
    for (const std::string &name : benchNames) {
        programs.push_back(wload::cachedProgram(
            wload::profileByName(name), windowed));
    }

    // Single-run non-detailed modes go through the experiment harness
    // (which owns the functional/detailed interleaving) and print a
    // compact summary with the func/host throughput split the
    // accuracy gate parses.
    if (simMode != analysis::SimMode::Detailed) {
        analysis::RunOptions runOpts;
        runOpts.warmupInsts = opts.getU64("warmup");
        runOpts.measureInsts = opts.getU64("insts");
        runOpts.dcachePorts =
            static_cast<unsigned>(opts.getU64("dcache-ports"));
        runOpts.numThreads = static_cast<unsigned>(programs.size());
        runOpts.stopOnFirstThread = programs.size() > 1;
        runOpts.overrides.astqEntries =
            static_cast<unsigned>(opts.getU64("astq"));
        runOpts.overrides.vcaTableAssoc =
            static_cast<unsigned>(opts.getU64("table-assoc"));
        runOpts.overrides.vcaDeadValueHints =
            opts.getBool("dead-hints") ? 1 : -1;
        runOpts.mode = simMode;
        runOpts.samplePeriodInsts = opts.getU64("sample-period");
        runOpts.sampleQuantumInsts = opts.getU64("sample-quantum");
        runOpts.sampleFuncWarmInsts = opts.getU64("sample-func-warm");
        runOpts.sampleDetailWarmInsts =
            opts.getU64("sample-detail-warm");

        // Sample-timeline lane: fast-forward spans, warm-up/measure
        // quanta and transplant instants (host timebase).
        std::unique_ptr<telemetry::ChromeTraceWriter> chromeWriter;
        if (!opts.get("chrome-trace").empty()) {
            chromeWriter = std::make_unique<telemetry::ChromeTraceWriter>(
                opts.get("chrome-trace"));
            runOpts.traceWriter = chromeWriter.get();
        }

        const auto &host = stats::HostStats::global();
        const double sec0 = host.simSeconds.value();
        const double insts0 = host.simInsts.value();
        const double cycles0 = host.simCycles.value();
        const double fsec0 = host.funcSeconds.value();
        const double finsts0 = host.funcInsts.value();
        const auto m = analysis::runTiming(
            programs, kind, static_cast<unsigned>(opts.getU64("regs")),
            runOpts);
        if (chromeWriter) {
            if (chromeWriter->finish()) {
                inform("wrote chrome trace %s (%llu events)",
                       chromeWriter->path().c_str(),
                       (unsigned long long)chromeWriter->eventCount());
            }
        }
        if (!m.ok) {
            std::fprintf(stderr, "configuration cannot operate: %s\n",
                         m.error.c_str());
            return 2;
        }
        std::printf("arch=%s regs=%llu threads=%zu windowed=%d "
                    "mode=%s\n",
                    cpu::renamerKindName(kind),
                    (unsigned long long)opts.getU64("regs"),
                    programs.size(), windowed ? 1 : 0,
                    analysis::simModeName(simMode));
        std::printf("cycles=%llu insts=%llu ipc=%.4f cpi=%.4f\n",
                    (unsigned long long)m.cycles,
                    (unsigned long long)m.insts, m.ipc, m.cpi);
        for (size_t t = 0; t < m.threadInsts.size(); ++t) {
            std::printf("thread %zu (%s): insts=%llu\n", t,
                        benchNames[t].c_str(),
                        (unsigned long long)m.threadInsts[t]);
        }
        std::printf("cycle accounting:");
        for (const auto &[name, frac] : m.cycleBreakdown)
            std::printf(" %s=%.1f%%", name.c_str(), 100 * frac);
        std::printf("\n");
        // The confidence line the accuracy gate parses: a sampled
        // estimate without its uncertainty is not a result.
        int worst = -1;
        double worstDev = -1;
        for (size_t i = 0; i < m.sampleRecords.size(); ++i) {
            const double dev =
                std::abs(m.sampleRecords[i].cpi - m.sampling.meanCpi);
            if (dev > worstDev) {
                worstDev = dev;
                worst = static_cast<int>(i);
            }
        }
        std::printf("sampling: samples=%u mean_cpi=%.6f "
                    "cpi_var=%.6f ci95_cpi=[%.6f,%.6f] "
                    "ipc_ci95=[%.6f,%.6f] ci_unbounded=%d "
                    "worst_sample=%d\n",
                    m.sampling.samples, m.sampling.meanCpi,
                    m.sampling.cpiVariance, m.sampling.ciLoCpi,
                    m.sampling.ciHiCpi, m.sampling.ipcCiLo(),
                    m.sampling.ipcCiHi(),
                    m.sampling.ciUnbounded ? 1 : 0, worst);
        std::printf("transplant: tag_valid=%.4f "
                    "bpred_occupancy=%.4f\n",
                    m.sampling.meanTagValidFraction,
                    m.sampling.meanBpredTableOccupancy);
        const double fsec = host.funcSeconds.value() - fsec0;
        const double finsts = host.funcInsts.value() - finsts0;
        const double dsec = host.simSeconds.value() - sec0;
        const double dinsts = host.simInsts.value() - insts0;
        const double dcycles = host.simCycles.value() - cycles0;
        std::printf("func: seconds=%.3f insts=%.0f mips=%.3f\n", fsec,
                    finsts, fsec > 0 ? finsts / fsec / 1e6 : 0.0);
        std::printf("host: seconds=%.3f mips=%.3f "
                    "cycles_per_sec=%.0f\n",
                    dsec, dsec > 0 ? dinsts / dsec / 1e6 : 0.0,
                    dsec > 0 ? dcycles / dsec : 0.0);
        analysis::SamplingStats samplingStats;
        samplingStats.populate(m);
        if (opts.getBool("stats")) {
            std::printf("\n-- statistics --\n");
            std::ostringstream os;
            samplingStats.dump(os);
            stats::HostStats::global().dump(os);
            std::fputs(os.str().c_str(), stdout);
        }
        if (!opts.get("stats-json").empty()) {
            std::ofstream jsonFile(opts.get("stats-json"));
            if (!jsonFile)
                fatal("cannot open --stats-json '%s'",
                      opts.get("stats-json").c_str());
            trace::JsonWriter w(jsonFile);
            w.beginObject();
            w.key("schemaVersion")
                .number(std::uint64_t(trace::kStatsJsonSchemaVersion));
            w.key("config").beginObject();
            w.key("arch").string(cpu::renamerKindName(kind));
            w.key("regs").number(opts.getU64("regs"));
            w.key("threads").number(std::uint64_t(programs.size()));
            w.key("windowed").boolean(windowed);
            w.key("insts").number(std::uint64_t(runOpts.measureInsts));
            w.key("mode").string(analysis::simModeName(simMode));
            w.key("sample_period")
                .number(std::uint64_t(runOpts.samplePeriodInsts));
            w.key("sample_quantum")
                .number(std::uint64_t(runOpts.sampleQuantumInsts));
            w.key("sample_detail_warm")
                .number(std::uint64_t(runOpts.sampleDetailWarmInsts));
            w.endObject();
            w.key("summary").beginObject();
            w.key("cycles").number(std::uint64_t(m.cycles));
            w.key("insts").number(std::uint64_t(m.insts));
            w.key("ipc").number(m.ipc);
            w.key("cpi").number(m.cpi);
            w.endObject();
            w.key("sampling").beginObject();
            w.key("samples")
                .number(std::uint64_t(m.sampling.samples));
            w.key("mean_cpi").number(m.sampling.meanCpi);
            w.key("cpi_variance").number(m.sampling.cpiVariance);
            w.key("ci_lo_cpi").number(m.sampling.ciLoCpi);
            w.key("ci_hi_cpi").number(m.sampling.ciHiCpi);
            w.key("ci_unbounded").boolean(m.sampling.ciUnbounded);
            w.key("ipc_ci_lo").number(m.sampling.ipcCiLo());
            w.key("ipc_ci_hi").number(m.sampling.ipcCiHi());
            w.key("mean_tag_valid_fraction")
                .number(m.sampling.meanTagValidFraction);
            w.key("mean_bpred_table_occupancy")
                .number(m.sampling.meanBpredTableOccupancy);
            w.key("records").beginArray();
            for (const analysis::SampleRecord &r : m.sampleRecords) {
                w.beginObject();
                w.key("start_inst")
                    .number(std::uint64_t(r.startInst));
                w.key("warm_cycles")
                    .number(std::uint64_t(r.warmCycles));
                w.key("warm_insts")
                    .number(std::uint64_t(r.warmInsts));
                w.key("cycles").number(std::uint64_t(r.cycles));
                w.key("insts").number(std::uint64_t(r.insts));
                w.key("cpi").number(r.cpi);
                w.key("tag_valid_fraction")
                    .number(r.tagValidFraction);
                w.key("bpred_table_occupancy")
                    .number(r.bpredTableOccupancy);
                w.key("phase").number(double(r.phase));
                w.key("weight").number(r.weight);
                w.endObject();
            }
            w.endArray();
            w.endObject();
            trace::writeJsonGroup(stats::HostStats::global(), w);
            w.endObject();
            jsonFile << '\n';
        }
        return 0;
    }

    cpu::CpuParams params = cpu::CpuParams::preset(
        kind, static_cast<unsigned>(opts.getU64("regs")),
        static_cast<unsigned>(programs.size()));
    params.dcachePorts =
        static_cast<unsigned>(opts.getU64("dcache-ports"));
    params.astqEntries = static_cast<unsigned>(opts.getU64("astq"));
    if (opts.getU64("table-assoc") > 0) {
        params.vcaTableAssoc =
            static_cast<unsigned>(opts.getU64("table-assoc"));
    }
    params.vcaDeadValueHints = opts.getBool("dead-hints");
    params.statSampleInterval =
        static_cast<unsigned>(opts.getU64("stat-sample-interval"));

    try {
        const auto hostStart = std::chrono::steady_clock::now();
        cpu::OooCpu cpu(params, programs);
        if (opts.getU64("trace") > 0) {
            cpu::TraceOptions traceOpts;
            traceOpts.maxInsts = opts.getU64("trace");
            cpu::attachCommitTracer(cpu, std::cout, traceOpts);
        }
        std::ofstream pipeFile;
        if (!opts.get("pipeview").empty()) {
            pipeFile.open(opts.get("pipeview"));
            if (!pipeFile)
                fatal("cannot open --pipeview '%s'",
                      opts.get("pipeview").c_str());
            cpu::attachPipeTracer(cpu, pipeFile,
                                  opts.getU64("pipeview-insts"),
                                  opts.getBool("pipeview-instants"));
        }
        std::unique_ptr<telemetry::ChromeTraceWriter> chromeWriter;
        if (!opts.get("chrome-trace").empty()) {
            chromeWriter = std::make_unique<telemetry::ChromeTraceWriter>(
                opts.get("chrome-trace"));
            telemetry::ChromeSimTraceOptions simTraceOpts;
            simTraceOpts.maxInsts = opts.getU64("chrome-trace-insts");
            telemetry::attachChromeSimTracer(cpu, *chromeWriter,
                                             simTraceOpts);
        }
        std::unique_ptr<telemetry::RegCacheAnalyzer> regAnalyzer;
        if (opts.getBool("reg-telemetry")) {
            regAnalyzer = telemetry::attachRegCacheAnalyzer(cpu);
            if (!regAnalyzer)
                warn("--reg-telemetry: architecture '%s' has no "
                     "register cache to analyze",
                     cpu::renamerKindName(kind));
        }
        const InstCount warmup = opts.getU64("warmup");
        const InstCount insts = opts.getU64("insts");
        double warmupCommitted = 0;
        if (warmup) {
            cpu.run(warmup, warmup * 200 + 100'000,
                    programs.size() > 1);
            warmupCommitted = cpu.committedTotal.value();
            cpu.resetStats();
        }
        // The interval recorder attaches after warm-up so interval 0
        // starts at the measured region's first commit.
        std::unique_ptr<trace::IntervalRecorder> intervals;
        if (opts.getU64("interval") > 0) {
            intervals = std::make_unique<trace::IntervalRecorder>(
                opts.getU64("interval"));
            intervals->addProbe("dcache_accesses", [&cpu] {
                return cpu.memSystem().dcache().accesses.value();
            });
            intervals->addProbe("mem_stall_cycles", [&cpu] {
                return cpu.cycleAccounting.memStall.value();
            });
            intervals->addProbe("rename_stall_cycles", [&cpu] {
                return cpu.renameStallCycles.value();
            });
            // One probe per machine-level taxonomy leaf, so interval
            // records double as aligned stall time series for
            // vca-explain. All-zero under VCA_NTELEMETRY.
            using Buckets = cpu::TaxonomyBuckets;
            for (unsigned l = 0; l < Buckets::numLeaves; ++l) {
                const auto leaf = static_cast<Buckets::Leaf>(l);
                intervals->addProbe(
                    std::string("tax.") + Buckets::leafName(leaf),
                    [&cpu, leaf] {
                        return cpu.cycleAccounting.taxonomy
                            .leafValue(leaf);
                    });
            }
            cpu.addCommitListener([&cpu, &intervals](
                                      const cpu::DynInst &) {
                intervals->onCommit(cpu.currentCycle());
            });
        }
        const auto res = cpu.run(insts, insts * 200 + 100'000,
                                 programs.size() > 1);
        const std::chrono::duration<double> hostElapsed =
            std::chrono::steady_clock::now() - hostStart;
        if (intervals)
            intervals->finish(cpu.currentCycle());

        // Host throughput for this invocation (warmup included: that
        // is the wall cost of the simulation).
        stats::HostStats hostStats;
        hostStats.record(hostElapsed.count(),
                         warmupCommitted + cpu.committedTotal.value(),
                         static_cast<double>(cpu.currentCycle()));

        if (chromeWriter) {
            // One host-time lane so the simulated tracks have a
            // wall-clock anchor alongside them.
            chromeWriter->setProcessName(100, "host time");
            chromeWriter->setThreadName(100, 0, "vca-sim");
            chromeWriter->slice(100, 0, "simulate", 0,
                                hostElapsed.count() * 1e6);
            if (chromeWriter->finish()) {
                inform("wrote chrome trace %s (%llu events)",
                       chromeWriter->path().c_str(),
                       (unsigned long long)chromeWriter->eventCount());
            }
        }

        std::printf("arch=%s regs=%u threads=%zu windowed=%d\n",
                    cpu::renamerKindName(kind), params.physRegs,
                    programs.size(), windowed ? 1 : 0);
        std::printf("cycles=%llu insts=%llu ipc=%.4f cpi=%.4f\n",
                    (unsigned long long)res.cycles,
                    (unsigned long long)res.totalInsts, res.ipc,
                    res.ipc > 0 ? 1.0 / res.ipc : 0.0);
        for (size_t t = 0; t < programs.size(); ++t) {
            std::printf("thread %zu (%s): insts=%llu\n", t,
                        benchNames[t].c_str(),
                        (unsigned long long)res.threadInsts[t]);
        }
        {
            const double cyc = std::max(1.0, double(res.cycles));
            const auto &ca = cpu.cycleAccounting;
            std::printf("cycle accounting: commit=%.1f%% mem=%.1f%% "
                        "exec=%.1f%% rename=%.1f%% window=%.1f%% "
                        "frontend=%.1f%%\n",
                        100 * ca.commitActive.value() / cyc,
                        100 * ca.memStall.value() / cyc,
                        100 * ca.execStall.value() / cyc,
                        100 * ca.renameFreeList.value() / cyc,
                        100 * ca.windowShift.value() / cyc,
                        100 * ca.frontendStall.value() / cyc);
        }
        std::printf("host: seconds=%.3f mips=%.3f cycles_per_sec=%.0f\n",
                    hostStats.simSeconds.value(),
                    hostStats.simMips.value(),
                    hostStats.cyclesPerSec.value());
        if (opts.getBool("stats")) {
            std::printf("\n-- statistics --\n");
            std::ostringstream os;
            cpu.dump(os);
            hostStats.dump(os);
            std::fputs(os.str().c_str(), stdout);
        }
        if (!opts.get("stats-json").empty()) {
            std::ofstream jsonFile(opts.get("stats-json"));
            if (!jsonFile)
                fatal("cannot open --stats-json '%s'",
                      opts.get("stats-json").c_str());
            trace::JsonWriter w(jsonFile);
            w.beginObject();
            w.key("schemaVersion")
                .number(std::uint64_t(trace::kStatsJsonSchemaVersion));
            w.key("config").beginObject();
            w.key("arch").string(cpu::renamerKindName(kind));
            w.key("regs").number(std::uint64_t(params.physRegs));
            w.key("threads").number(std::uint64_t(programs.size()));
            w.key("windowed").boolean(windowed);
            w.key("insts").number(std::uint64_t(insts));
            w.key("mode").string("detailed");
            w.endObject();
            w.key("summary").beginObject();
            w.key("cycles").number(std::uint64_t(res.cycles));
            w.key("insts").number(std::uint64_t(res.totalInsts));
            w.key("ipc").number(res.ipc);
            w.endObject();
            trace::writeJsonGroup(cpu, w);
            trace::writeJsonGroup(hostStats, w);
            if (intervals)
                intervals->writeJson(w);
            w.endObject();
            jsonFile << '\n';
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr,
                     "configuration cannot operate: %s\n", e.what());
        return 2;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Argument/setup errors raise FatalError too; exit cleanly rather
    // than std::terminate so shell scripts can distinguish bad usage.
    try {
        return simMain(argc, argv);
    } catch (const vca::FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
