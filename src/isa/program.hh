/**
 * @file
 * An executable VRISC-64 program image plus the simulated address-space
 * layout shared by the functional and timing simulators.
 */

#ifndef VCA_ISA_PROGRAM_HH
#define VCA_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "isa/registers.hh"
#include "sim/types.hh"

namespace vca::isa {

/**
 * Simulated virtual address-space layout (per thread).
 *
 * The VCA register backing store lives in a dedicated region far from
 * code/data/stack; the windowed base pointer starts high in that region
 * and moves down one frame per call, exactly like a register stack.
 */
namespace layout {

constexpr Addr codeBase = 0x0001'0000;
constexpr Addr dataBase = 0x1000'0000;
constexpr Addr stackTop = 0x7fff'ff00;

/** Base of the memory-mapped logical-register space. */
constexpr Addr regSpaceBase = 0x6000'0000'0000ULL;

/** Bytes per logical register slot. */
constexpr Addr regSlotBytes = 8;

/**
 * Bytes per window frame in the register space: exactly the 47
 * architecturally windowed slots, densely packed. Dense packing
 * matters: the VCA rename table is indexed by the low address bits
 * (paper Figure 3), and since gcd(47, 64) == 1 consecutive window
 * frames spread across all 64 sets instead of colliding set-for-set
 * (which a power-of-two frame stride would cause).
 */
constexpr Addr windowFrameBytes = windowSlots * regSlotBytes;

/** Global (non-windowed) register frame for a thread. */
constexpr Addr globalFrameBytes = 256;

/** Initial windowed base pointer: frames grow downward from here. */
constexpr Addr windowStackTop = regSpaceBase + 0x0100'0000;

/**
 * Spacing between the register spaces of different hardware threads.
 * Distinct per-thread base pointers give every logical register a
 * globally unique memory address, which is what lets a single VCA
 * rename table serve all threads (paper Section 2.1.4).
 */
constexpr Addr threadRegionBytes = 0x0200'0000;

/** Byte address of the code word at instruction index pc. */
constexpr Addr pcToAddr(Addr pc) { return codeBase + pc * 4; }

/** Global base pointer for a thread's non-windowed registers. */
constexpr Addr
globalBasePointer(unsigned tid = 0)
{
    return regSpaceBase + Addr(tid) * threadRegionBytes;
}

/** Initial windowed base pointer for a thread. */
constexpr Addr
initialWindowPointer(unsigned tid = 0)
{
    return regSpaceBase + Addr(tid) * threadRegionBytes + 0x0100'0000 -
           windowFrameBytes;
}

/** Thread id owning a logical-register address. */
constexpr unsigned
regSpaceThread(Addr addr)
{
    return static_cast<unsigned>((addr - regSpaceBase) /
                                 threadRegionBytes);
}

} // namespace layout

/** One initialized data region in the program image. */
struct DataSegment
{
    Addr base = 0;
    std::vector<std::uint64_t> words;
};

/**
 * A complete program: code, initial data, entry point and ABI metadata.
 */
class Program
{
  public:
    std::string name;
    bool windowedAbi = false;
    Addr entry = 0; ///< instruction index of the first instruction
    std::vector<std::uint32_t> code;
    std::vector<DataSegment> data;

    /** Decode the code image; must be called after code is final. */
    void finalize();

    bool finalized() const { return decoded_.size() == code.size(); }

    /** Decoded instruction at pc (Halt outside the image).
     *  Inline: called once per fetched instruction. */
    const StaticInst &
    inst(Addr pc) const
    {
        if (pc < decoded_.size())
            return decoded_[pc];
        return haltInst_;
    }

    size_t size() const { return code.size(); }

  private:
    std::vector<StaticInst> decoded_;
    StaticInst haltInst_;
};

} // namespace vca::isa

#endif // VCA_ISA_PROGRAM_HH
