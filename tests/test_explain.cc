/**
 * @file
 * Tests for the differential run explainer (ctest label:
 * observability): exact CPI-gap attribution, coarsening across
 * mismatched leaf sets, stats-JSON ingestion, Measurement projection,
 * interval alignment, and the planted-gap selftest vca-explain
 * --selftest runs in CI.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/explain.hh"
#include "sim/logging.hh"

namespace {

using namespace vca;
using analysis::ExplainInput;
using analysis::ExplainReport;

ExplainInput
syntheticRun(const char *label, double cycles, double spillCycles)
{
    ExplainInput in;
    in.label = label;
    in.insts = 50'000;
    in.cycles = cycles;
    in.leaves = {
        {"retiring", 50'000},
        {"backend_core.exec", 10'000},
        {"backend_memory.spill_stall", spillCycles},
        {"backend_memory.dcache", cycles - 60'000 - spillCycles},
    };
    return in;
}

TEST(Explain, AttributionsSumExactlyToTheGap)
{
    const ExplainInput a = syntheticRun("a", 80'000, 0);
    const ExplainInput b = syntheticRun("b", 95'000, 9'000);
    const ExplainReport r = analysis::explain(a, b);

    EXPECT_NEAR(r.gap, (95'000.0 - 80'000.0) / 50'000.0, 1e-12);
    EXPECT_FALSE(r.coarsened);
    EXPECT_NEAR(r.attributedFraction, 1.0, 1e-12);
    double sum = 0;
    for (const auto &att : r.attributions)
        sum += att.delta;
    EXPECT_NEAR(sum, r.gap, 1e-12);
    ASSERT_FALSE(r.attributions.empty());
    EXPECT_EQ(r.attributions[0].leaf, "backend_memory.spill_stall");
}

TEST(Explain, ZeroGapProducesZeroShares)
{
    const ExplainInput a = syntheticRun("a", 80'000, 0);
    const ExplainReport r = analysis::explain(a, a);
    EXPECT_DOUBLE_EQ(r.gap, 0.0);
    for (const auto &att : r.attributions) {
        EXPECT_DOUBLE_EQ(att.delta, 0.0);
        EXPECT_DOUBLE_EQ(att.share, 0.0);
    }
}

TEST(Explain, MismatchedLeafSetsAreCoarsened)
{
    ExplainInput a = syntheticRun("tree", 80'000, 0);
    ExplainInput flat;
    flat.label = "flat";
    flat.insts = 50'000;
    flat.cycles = 95'000;
    flat.leaves = {
        {"retiring", 50'000},
        {"exec_stall", 10'000},
        {"rename_stall", 9'000},
        {"mem_stall", 26'000},
    };
    const ExplainReport r = analysis::explain(a, flat);
    EXPECT_TRUE(r.coarsened);
    EXPECT_NEAR(r.attributedFraction, 1.0, 1e-12);
    ASSERT_FALSE(r.attributions.empty());
    // spill_stall coarsens into the rename bucket on the tree side,
    // so the planted gap still lands on rename_stall.
    EXPECT_EQ(r.attributions[0].leaf, "rename_stall");
}

TEST(Explain, MeasurementProjectionUsesCoarseBuckets)
{
    analysis::Measurement m;
    m.ok = true;
    m.cycles = 1'000;
    m.insts = 500;
    m.cycleBreakdown = {
        {"commit", 0.5}, {"mem", 0.2},   {"exec", 0.1},
        {"rename", 0.1}, {"window", 0.05}, {"frontend", 0.05},
    };
    const ExplainInput in = analysis::explainInputFromMeasurement(
        "m", "cfg", m);
    EXPECT_DOUBLE_EQ(in.cycles, 1'000);
    EXPECT_DOUBLE_EQ(in.insts, 500);
    double sum = 0;
    bool sawRetiring = false;
    for (const auto &[name, cycles] : in.leaves) {
        sum += cycles;
        if (name == "retiring") {
            sawRetiring = true;
            EXPECT_DOUBLE_EQ(cycles, 500);
        }
    }
    EXPECT_DOUBLE_EQ(sum, 1'000);
    EXPECT_TRUE(sawRetiring);
}

TEST(Explain, LoadRunJsonPrefersTaxonomyAndReadsIntervals)
{
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "vca_test_explain_run.json")
            .string();
    {
        std::ofstream os(path);
        os << R"({
  "schemaVersion": 2,
  "config": {"arch": "vca", "regs": 192, "threads": 1},
  "summary": {"cycles": 200, "insts": 100, "ipc": 0.5},
  "cpu": {
    "cycles": 200,
    "cycle_accounting": {
      "commit_active": 100, "mem_stall": 60, "exec_stall": 20,
      "rename_freelist": 10, "window_shift": 0, "frontend": 10,
      "taxonomy": {
        "retiring": 100, "idle": 0,
        "frontend_bound": {"icache": 4, "fetch": 6},
        "bad_speculation": {"recovery": 0},
        "backend_core": {"exec": 20, "rename_freelist": 2},
        "backend_memory": {"dcache": 55, "store_drain": 5,
                           "fill_latency": 0, "spill_stall": 8,
                           "window_trap": 0},
        "thread0": {"retiring": 100}
      }
    }
  },
  "intervals": [
    {"interval": 0, "start_cycle": 0, "end_cycle": 100,
     "committed": 50, "committed_cum": 50, "ipc": 0.5,
     "partial": false, "tax.retiring": 50,
     "tax.backend_memory.spill_stall": 3},
    {"interval": 1, "start_cycle": 100, "end_cycle": 200,
     "committed": 50, "committed_cum": 100, "ipc": 0.5,
     "partial": true, "tax.retiring": 50,
     "tax.backend_memory.spill_stall": 5}
  ]
})";
    }

    const ExplainInput in = analysis::loadRunJson(path, "run");
    std::remove(path.c_str());

    EXPECT_EQ(in.label, "run");
    EXPECT_DOUBLE_EQ(in.cycles, 200);
    EXPECT_DOUBLE_EQ(in.insts, 100);
    EXPECT_NE(in.config.find("arch=vca"), std::string::npos);

    double taxSum = 0;
    bool sawThreadLeaf = false;
    for (const auto &[name, cycles] : in.leaves) {
        taxSum += cycles;
        if (name.rfind("thread", 0) == 0)
            sawThreadLeaf = true;
    }
    EXPECT_DOUBLE_EQ(taxSum, 200)
        << "machine-level taxonomy leaves partition summary.cycles";
    EXPECT_FALSE(sawThreadLeaf)
        << "per-thread subtrees must not double-count";

    ASSERT_EQ(in.intervals.size(), 2u);
    ASSERT_EQ(in.intervalLeafNames.size(), 2u);
    EXPECT_EQ(in.intervalLeafNames[0], "retiring");
    EXPECT_FALSE(in.intervals[0].partial);
    EXPECT_TRUE(in.intervals[1].partial);
    EXPECT_DOUBLE_EQ(in.intervals[1].leafCycles.at(1), 5);
}

TEST(Explain, LoadRunJsonFallsBackToFlatBuckets)
{
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() / "vca_test_explain_flat.json")
            .string();
    {
        std::ofstream os(path);
        // A v1-style document: no schemaVersion, no taxonomy.
        os << R"({
  "config": {"arch": "baseline"},
  "summary": {"cycles": 100, "insts": 50, "ipc": 0.5},
  "cpu": {
    "cycles": 100,
    "cycle_accounting": {
      "commit_active": 50, "mem_stall": 30, "exec_stall": 10,
      "rename_freelist": 0, "window_shift": 0, "frontend": 10
    }
  }
})";
    }
    const ExplainInput in = analysis::loadRunJson(path, "");
    std::remove(path.c_str());

    EXPECT_EQ(in.label, path);
    double sum = 0;
    for (const auto &[name, cycles] : in.leaves)
        sum += cycles;
    EXPECT_DOUBLE_EQ(sum, 100);
    ASSERT_FALSE(in.leaves.empty());
    EXPECT_EQ(in.leaves[0].first, "retiring");
}

TEST(Explain, LoadRunJsonRejectsGarbage)
{
    EXPECT_THROW(analysis::loadRunJson("/nonexistent/run.json", ""),
                 FatalError);
}

TEST(Explain, HotspotsLocalizeWhereTheGapOpens)
{
    ExplainInput a = syntheticRun("a", 80'000, 0);
    ExplainInput b = syntheticRun("b", 120'000, 40'000);
    a.intervalLeafNames = {"backend_memory.spill_stall"};
    b.intervalLeafNames = a.intervalLeafNames;
    for (int i = 0; i < 5; ++i) {
        analysis::ExplainInterval iv;
        iv.committedCum = (i + 1) * 10'000.0;
        iv.cycles = 16'000;
        iv.leafCycles = {0};
        a.intervals.push_back(iv);
        if (i == 4) { // the gap opens entirely in the last fifth
            iv.cycles = 56'000;
            iv.leafCycles = {40'000};
        }
        b.intervals.push_back(iv);
    }
    const ExplainReport r = analysis::explain(a, b);
    ASSERT_FALSE(r.hotspots.empty());
    EXPECT_GE(r.hotspots[0].instLo, 40'000.0 - 1e-9);
    EXPECT_EQ(r.hotspots[0].topLeaf, "backend_memory.spill_stall");
    EXPECT_GT(r.hotspots[0].gapShare, 0.5);
}

TEST(Explain, SelftestPasses)
{
    EXPECT_EQ(analysis::explainSelftest(), 0);
}

} // namespace
