#include "sim/logging.hh"

#include <cstdarg>
#include <vector>

namespace vca {

namespace {
bool quietFlag = false;
} // namespace

namespace detail {

std::string
vformatMessage(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vformatMessage(fmt, args);
    va_end(args);
    return s;
}

} // namespace detail

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

} // namespace vca
