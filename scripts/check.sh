#!/usr/bin/env bash
# Full verification sweep: build and test the Release configuration and
# an AddressSanitizer/UBSan configuration.
#
# The Release configuration runs every ctest label (unit + golden +
# observability, including the slow determinism sweep). The sanitizer
# configuration runs only -L unit: the golden suite asserts exact cycle
# counts that are identical across configurations anyway, and
# simulating the sweep twice more under ASan adds minutes for no extra
# signal.
#
# A third configuration builds with -DVCA_NTELEMETRY=ON (every
# telemetry hook compiled out) and gates the host-MIPS overhead of the
# compiled-in-but-disabled telemetry against it via perf_compare.py.
#
# Usage: scripts/check.sh [extra ctest args...]
#   CHECK_JOBS=N            parallelism (default: nproc)
#   CHECK_BUILD_DIR=dir     build-tree root (default: build-check)
#   CHECK_TELEM_GATE=0      skip the telemetry-overhead gate
#   CHECK_TELEM_THRESHOLD=F allowed fractional host-MIPS cost of the
#                           disabled telemetry hooks (default 0.05:
#                           the design target is 2%, the gate leaves
#                           headroom for host noise)
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="${CHECK_JOBS:-$(nproc)}"
root="${CHECK_BUILD_DIR:-build-check}"

run_config() {
    local name="$1"
    local label="$2"
    shift 2
    local dir="$root/$name"
    local -a label_args=()
    [[ -n "$label" ]] && label_args=(-L "$label")
    echo "== configure $name =="
    cmake -B "$dir" -S . "$@" >/dev/null
    echo "== build $name =="
    cmake --build "$dir" -j "$jobs"
    echo "== test $name =="
    (cd "$dir" &&
         ctest --output-on-failure -j "$jobs" "${label_args[@]}" \
               "${CTEST_ARGS[@]}")
}

CTEST_ARGS=("$@")

if command -v python3 >/dev/null; then
    echo "== perf_compare selftest =="
    python3 scripts/perf_compare.py --selftest
    echo "== check_stats_schema selftest =="
    python3 scripts/check_stats_schema.py --selftest
fi

run_config release "" -DCMAKE_BUILD_TYPE=Release
run_config asan-ubsan unit \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVCA_SANITIZE=address,undefined

# Telemetry-overhead gate: the probe hooks compiled in but *disabled*
# plus the always-on hierarchical cycle-taxonomy accounting must not
# cost measurable host throughput. Build a configuration with both
# removed entirely (-DVCA_NTELEMETRY=ON), run the same bench in both
# trees with the sweep cache disabled, and diff host MIPS.
if [[ "${CHECK_TELEM_GATE:-1}" != 0 ]] && command -v python3 >/dev/null
then
    echo "== configure notelemetry =="
    cmake -B "$root/notelemetry" -S . -DCMAKE_BUILD_TYPE=Release \
          -DVCA_NTELEMETRY=ON >/dev/null
    echo "== build notelemetry (telemetry-overhead gate) =="
    cmake --build "$root/notelemetry" -j "$jobs" --target \
          bench_fig6_single_port
    cmake --build "$root/release" -j "$jobs" --target \
          bench_fig6_single_port
    echo "== telemetry-overhead gate =="
    gate="$root/telem-gate"
    rm -rf "$gate"
    mkdir -p "$gate/base" "$gate/cand"
    telem_insts="${CHECK_TELEM_INSTS:-60000}"
    for side in base cand; do
        tree=release
        [[ "$side" == base ]] && tree=notelemetry
        VCA_CACHE_DIR= VCA_BENCH_JSON_DIR="$gate/$side" \
            VCA_WARMUP_INSTS=2000 VCA_MEASURE_INSTS="$telem_insts" \
            "$root/$tree/bench/bench_fig6_single_port" >/dev/null
    done
    python3 scripts/perf_compare.py "$gate/base" "$gate/cand" \
            --threshold "${CHECK_TELEM_THRESHOLD:-0.05}"
fi

echo "== all configurations passed =="
