/**
 * @file
 * A small work-stealing thread pool for embarrassingly parallel
 * sweeps.
 *
 * Each worker owns a deque of jobs: it pops work from the front of its
 * own queue and, when empty, steals from the back of a sibling's queue
 * (the classic Chase-Lev discipline, here with plain mutexes — jobs
 * are whole timing simulations, so queue traffic is negligible).
 * Submissions are distributed round-robin; a job submitted from inside
 * a worker goes to that worker's own queue, which keeps recursive
 * submission cheap and deadlock-free.
 *
 * Jobs may be cancelled until a worker picks them up; cancel() reports
 * whether the job was still pending. wait() blocks until every
 * non-cancelled job has finished, so a pool is always drained before
 * its results are read. An exception escaping a job is swallowed and
 * counted (jobExceptions()) instead of std::terminate-ing the process
 * — one bad job must never tear down the whole batch — but jobs that
 * care about the error should still catch it themselves and report a
 * structured failure, the way the sweep runner does.
 *
 * The default worker count comes from VCA_JOBS when set (clamped to at
 * least 1), otherwise std::thread::hardware_concurrency().
 */

#ifndef VCA_SIM_THREAD_POOL_HH
#define VCA_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vca {

class ThreadPool
{
  public:
    using Job = std::function<void()>;
    using JobId = std::uint64_t;

    /** @param numThreads worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned numThreads = 0);

    /** Drains every pending job, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; the returned id can cancel it while pending. */
    JobId submit(Job job);

    /**
     * Remove a pending job from its queue. Returns true when the job
     * was still queued (it will never run); false when it already
     * started or finished.
     */
    bool cancel(JobId id);

    /** Block until no job is pending or running. */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** VCA_JOBS when set (>=1), else hardware_concurrency(). */
    static unsigned defaultThreads();

    /** Process-wide pool built on first use with defaultThreads(). */
    static ThreadPool &global();

    /** Process-wide count of exceptions swallowed at job boundaries. */
    static std::uint64_t jobExceptions();

  private:
    struct QueuedJob
    {
        JobId id;
        Job fn;
    };

    struct Worker
    {
        std::mutex mutex;
        std::deque<QueuedJob> queue;
    };

    void workerLoop(unsigned self);
    bool takeJob(unsigned self, QueuedJob &out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_;              ///< guards the counters below
    std::condition_variable wakeCv_; ///< pending_ changed / stopping
    std::condition_variable idleCv_; ///< outstanding_ hit zero
    std::uint64_t pending_ = 0;     ///< queued, not yet picked up
    std::uint64_t outstanding_ = 0; ///< pending + currently running
    JobId nextId_ = 1;
    std::uint64_t submitCursor_ = 0;
    bool stop_ = false;
};

} // namespace vca

#endif // VCA_SIM_THREAD_POOL_HH
