/**
 * @file
 * Set-associative cache timing model.
 *
 * The caches model tags, LRU replacement, writebacks, and outstanding
 * misses (MSHR-style merging of accesses to an in-flight line). They do
 * not hold data: architectural data lives in SparseMemory, which is what
 * an execution-driven timing CPU reads/writes; the cache answers "how
 * long does this access take" and keeps the access statistics the
 * paper's Figures 5 and 6 are built from.
 */

#ifndef VCA_MEM_CACHE_HH
#define VCA_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "stats/statistics.hh"

namespace vca::mem {

/** Configuration for one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    unsigned hitLatency = 3;
    unsigned mshrs = 16; ///< max distinct lines in flight
};

/** Result of a timing access. */
struct AccessResult
{
    bool accepted = true;  ///< false => out of MSHRs, retry next cycle
    bool hit = true;
    Cycle latency = 0;     ///< total cycles until data available
};

/**
 * One cache level. Levels are chained via the next pointer; the last
 * level's misses cost memLatency.
 */
class Cache : public stats::StatGroup
{
  public:
    Cache(const CacheParams &params, Cache *next, unsigned memLatency,
          stats::StatGroup *parent);

    /**
     * Perform a timing access.
     * @param addr   byte address (already thread-tagged for SMT)
     * @param write  true for stores / spills
     * @param now    current cycle
     */
    AccessResult access(Addr addr, bool write, Cycle now);

    /** Invalidate all tags (used between warm-up configurations). */
    void invalidateAll();

    /**
     * Forget in-flight fills but keep tags. Functional warming runs on
     * its own clock; dropping the outstanding-miss bookkeeping keeps
     * those timestamps from leaking into the measured run's time base.
     */
    void
    drainInflight()
    {
        inflight_.clear();
        if (next_)
            next_->drainInflight();
    }

    /**
     * Adopt another cache's tag/LRU state (panics unless the geometry
     * matches). Sampled simulation transplants a persistent,
     * functionally-warmed hierarchy into each sample's fresh core so
     * cache state accumulates across samples. Outstanding-miss
     * bookkeeping is not copied: the destination starts with no
     * in-flight fills, as if freshly drained.
     */
    void copyStateFrom(const Cache &other);

    /**
     * Fraction of lines holding a valid tag — how warm this level is.
     * The sampled modes record it at each switch-in (right after the
     * warm-model transplant) so per-sample error can be correlated
     * with transplant warmth.
     */
    double
    tagValidFraction() const
    {
        if (lines_.empty())
            return 0;
        size_t valid = 0;
        for (const Line &l : lines_)
            valid += l.valid ? 1 : 0;
        return double(valid) / double(lines_.size());
    }

    const CacheParams &params() const { return params_; }

    // Statistics (public so formulas/benches can read them).
    stats::Scalar accesses;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar writebacks;
    stats::Scalar mshrRejects;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        Cycle lruStamp = 0;
    };

    // lineBytes is fatal-checked to be a power of two, and numSets_ is
    // a power of two in every standard config, so both computations
    // reduce to shift/mask on the hot path (modulo fallback otherwise).
    Addr lineAddr(Addr addr) const { return addr >> lineShift_; }
    size_t
    setIndex(Addr line) const
    {
        return setMask_ ? (line & setMask_) : (line % numSets_);
    }

    /** Latency for fetching a line from the next level downward. */
    Cycle fillLatency(Addr addr, bool write, Cycle now);

    CacheParams params_;
    Cache *next_;
    unsigned memLatency_;
    size_t numSets_;
    unsigned lineShift_ = 0;
    Addr setMask_ = 0; ///< numSets_-1 when a power of two, else 0
    std::vector<Line> lines_; ///< numSets x assoc
    Cycle stamp_ = 0;

    /** In-flight misses: line address -> cycle the fill completes. */
    std::unordered_map<Addr, Cycle> inflight_;
};

/** Parameters for the whole hierarchy (paper Table 1 defaults). */
struct MemSystemParams
{
    CacheParams il1{"icache", 64 * 1024, 4, 64, 1, 16};
    CacheParams dl1{"dcache", 64 * 1024, 4, 64, 3, 16};
    CacheParams l2{"l2", 1024 * 1024, 4, 64, 15, 32};
    unsigned memLatency = 250;
};

/**
 * The L1I/L1D/shared-L2/memory hierarchy.
 *
 * Port arbitration is the CPU's job (the LSU issues at most dcachePorts
 * operations per cycle); the hierarchy provides latencies and counts.
 */
class MemSystem : public stats::StatGroup
{
  public:
    explicit MemSystem(const MemSystemParams &params,
                       stats::StatGroup *parent = nullptr);

    AccessResult instAccess(Addr addr, Cycle now);
    AccessResult dataAccess(Addr addr, bool write, Cycle now);

    void invalidateAll();

    /** See Cache::drainInflight (covers all levels). */
    void
    drainInflight()
    {
        il1_.drainInflight();
        dl1_.drainInflight();
    }

    /** See Cache::copyStateFrom (covers all levels). */
    void
    copyStateFrom(const MemSystem &other)
    {
        l2_.copyStateFrom(other.l2_);
        il1_.copyStateFrom(other.il1_);
        dl1_.copyStateFrom(other.dl1_);
    }

    Cache &icache() { return il1_; }
    Cache &dcache() { return dl1_; }
    Cache &l2() { return l2_; }

    /** Valid-tag fraction across every line of every level (the
     *  hierarchy-wide warmth the sampling layer records). */
    double
    tagValidFraction() const
    {
        const auto lines = [](const Cache &c) {
            return double(c.params().sizeBytes / c.params().lineBytes);
        };
        const double total =
            lines(il1_) + lines(dl1_) + lines(l2_);
        if (total <= 0)
            return 0;
        return (il1_.tagValidFraction() * lines(il1_) +
                dl1_.tagValidFraction() * lines(dl1_) +
                l2_.tagValidFraction() * lines(l2_)) / total;
    }

    /** Tag an address with a thread id to model distinct address spaces. */
    static Addr
    threadTag(ThreadId tid, Addr addr)
    {
        return (Addr(tid) << 48) | addr;
    }

  private:
    Cache l2_;
    Cache il1_;
    Cache dl1_;
};

} // namespace vca::mem

#endif // VCA_MEM_CACHE_HH
