/**
 * @file
 * Branch prediction: a hybrid (tournament) direction predictor combining
 * a bimodal table and a gshare table via a chooser (the "Hybrid"
 * predictor of paper Table 1), plus a checkpointable return-address
 * stack for predicting RET targets.
 *
 * Direct branch/jump/call targets are taken from the decoded program
 * image (equivalent to a perfect BTB for direct control transfers; the
 * only indirect control transfer in VRISC-64 is RET, which the RAS
 * handles).
 *
 * The global history is updated speculatively at predict time; each
 * prediction returns a checkpoint that restore() uses to repair the
 * history and RAS after a squash.
 */

#ifndef VCA_BPRED_BPRED_HH
#define VCA_BPRED_BPRED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "stats/statistics.hh"

namespace vca::bpred {

struct BPredParams
{
    unsigned bimodalBits = 13;  ///< log2 entries
    unsigned gshareBits = 13;
    unsigned chooserBits = 13;
    unsigned historyBits = 12;
    unsigned rasEntries = 16;
};

/** State needed to undo a speculative prediction. */
struct BPredCheckpoint
{
    std::uint64_t history = 0;
    unsigned rasTop = 0;
    Addr rasTopValue = 0;
};

class BranchPredictor : public stats::StatGroup
{
  public:
    BranchPredictor(const BPredParams &params, unsigned numThreads,
                    stats::StatGroup *parent);

    /**
     * Predict the direction of a conditional branch at pc and
     * speculatively update the history.
     */
    bool predict(ThreadId tid, Addr pc, BPredCheckpoint &ckpt);

    /** Record a call: push the return PC on the thread's RAS. */
    void pushRas(ThreadId tid, Addr returnPc, BPredCheckpoint &ckpt);

    /** Predict a RET target by popping the RAS. */
    Addr popRas(ThreadId tid, BPredCheckpoint &ckpt);

    /** Snapshot for non-branch control (call/ret) checkpointing. */
    BPredCheckpoint snapshot(ThreadId tid) const;

    /** Undo speculative state back to a checkpoint (on squash). */
    void restore(ThreadId tid, const BPredCheckpoint &ckpt);

    /**
     * Repair the global history after a mispredicted conditional
     * branch: restore to the pre-prediction checkpoint, then shift in
     * the actual outcome (what the front end does on a redirect).
     */
    void repairHistory(ThreadId tid, const BPredCheckpoint &ckpt,
                       bool actualTaken);

    /** Commit-time update of the direction tables. */
    void update(ThreadId tid, Addr pc, bool taken,
                std::uint64_t historyAtPredict);

    /**
     * Adopt another predictor's tables, histories and return-address
     * stacks (panics unless the geometry matches). Sampled simulation
     * transplants a persistent, functionally-warmed predictor into
     * each sample's fresh core. Statistics are not copied.
     */
    void copyStateFrom(const BranchPredictor &other);

    /**
     * Fraction of direction-table counters trained away from their
     * reset value (bimodal/gshare reset to 1, chooser to 2) — how warm
     * the predictor is. The sampled modes record it at each switch-in
     * so per-sample error can be correlated with transplant warmth.
     */
    double
    tableOccupancy() const
    {
        const size_t total =
            bimodal_.size() + gshare_.size() + chooser_.size();
        if (!total)
            return 0;
        size_t trained = 0;
        for (Counter c : bimodal_)
            trained += c != 1 ? 1 : 0;
        for (Counter c : gshare_)
            trained += c != 1 ? 1 : 0;
        for (Counter c : chooser_)
            trained += c != 2 ? 1 : 0;
        return double(trained) / double(total);
    }

    stats::Scalar lookups;
    stats::Scalar condMispredicts;
    stats::Scalar rasMispredicts;

  private:
    using Counter = std::uint8_t; ///< 2-bit saturating

    static bool taken(Counter c) { return c >= 2; }

    static void
    train(Counter &c, bool t)
    {
        if (t && c < 3)
            ++c;
        else if (!t && c > 0)
            --c;
    }

    size_t
    bimodalIndex(Addr pc) const
    {
        return pc & (bimodal_.size() - 1);
    }

    size_t
    gshareIndex(Addr pc, std::uint64_t history) const
    {
        return (pc ^ history) & (gshare_.size() - 1);
    }

    BPredParams params_;
    std::vector<Counter> bimodal_;
    std::vector<Counter> gshare_;
    std::vector<Counter> chooser_;

    struct ThreadState
    {
        std::uint64_t history = 0;
        std::vector<Addr> ras;
        unsigned rasTop = 0; ///< index of next push slot
    };
    std::vector<ThreadState> threads_;
};

} // namespace vca::bpred

#endif // VCA_BPRED_BPRED_HH
