/**
 * @file
 * SMT workload selection, reproducing paper Section 3.2 (after
 * Raasch & Reinhardt): simulate every two-benchmark pairing on the
 * baseline SMT machine, extract a 14-statistic vector per workload,
 * reduce dimensionality with PCA, cluster with average linkage, and
 * keep the workload nearest each cluster centroid. Four-thread
 * workloads repeat the process on pairs of the selected two-thread
 * workloads.
 *
 * The paper selects 43 two-thread and 127 four-thread clusters from
 * 100M-instruction runs; the defaults here are scaled for laptop/CI
 * budgets and are configurable (the pipeline itself is identical).
 */

#ifndef VCA_ANALYSIS_WORKLOADS_HH
#define VCA_ANALYSIS_WORKLOADS_HH

#include <string>
#include <vector>

#include "analysis/experiment.hh"

namespace vca::analysis {

struct WorkloadSelection
{
    /** Benchmark names per selected two-thread workload. */
    std::vector<std::vector<std::string>> twoThread;
    /** Benchmark names per selected four-thread workload. */
    std::vector<std::vector<std::string>> fourThread;
    /** All candidate counts, for reporting. */
    size_t twoThreadCandidates = 0;
    size_t fourThreadCandidates = 0;
};

struct SelectionOptions
{
    unsigned numTwoThread = 8;   ///< clusters to keep (paper: 43)
    unsigned numFourThread = 6;  ///< clusters to keep (paper: 127)
    InstCount statInsts = 30'000; ///< per-workload profiling budget
    unsigned physRegs = 448;     ///< baseline machine used for stats
};

/** Run the full selection pipeline (deterministic). */
WorkloadSelection selectWorkloads(const SelectionOptions &opts);

/** The 14-statistic vector for one simulated workload (exposed for
 *  testing and for the ablation benches). */
std::vector<double> workloadStats(
    const std::vector<std::string> &benchNames, unsigned physRegs,
    InstCount statInsts);

} // namespace vca::analysis

#endif // VCA_ANALYSIS_WORKLOADS_HH
