/**
 * @file
 * Unit tests for SparseMemory and the cache timing model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/sparse_memory.hh"

namespace {

using namespace vca;
using namespace vca::mem;

TEST(SparseMemory, ZeroFillAndRoundTrip)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1234560), 0u);
    m.write(0x1234560, 0xdeadbeef);
    EXPECT_EQ(m.read(0x1234560), 0xdeadbeefu);
    EXPECT_EQ(m.read(0x1234568), 0u);
}

TEST(SparseMemory, DoubleRoundTrip)
{
    SparseMemory m;
    m.writeDouble(0x1000, 3.25);
    EXPECT_DOUBLE_EQ(m.readDouble(0x1000), 3.25);
}

TEST(SparseMemory, PagesAllocatedLazily)
{
    SparseMemory m;
    EXPECT_EQ(m.allocatedPages(), 0u);
    (void)m.read(0x9999);
    EXPECT_EQ(m.allocatedPages(), 0u); // reads do not allocate
    m.write(0x9999, 1);
    EXPECT_EQ(m.allocatedPages(), 1u);
    m.write(0x9999 + SparseMemory::pageBytes, 1);
    EXPECT_EQ(m.allocatedPages(), 2u);
}

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest()
        : root_("root"),
          l2_({"l2", 64 * 1024, 4, 64, 15, 32}, nullptr, 250, &root_),
          l1_({"l1", 4 * 1024, 2, 64, 3, 4}, &l2_, 250, &root_)
    {
    }

    stats::StatGroup root_;
    Cache l2_;
    Cache l1_;
};

TEST_F(CacheTest, MissThenHit)
{
    auto r1 = l1_.access(0x1000, false, 0);
    EXPECT_FALSE(r1.hit);
    EXPECT_GE(r1.latency, 3u + 15u); // L1 lat + L2 (miss there too, +250)

    auto r2 = l1_.access(0x1008, false, r1.latency);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.latency, 3u);
    EXPECT_DOUBLE_EQ(l1_.accesses.value(), 2.0);
    EXPECT_DOUBLE_EQ(l1_.misses.value(), 1.0);
    EXPECT_DOUBLE_EQ(l1_.hits.value(), 1.0);
}

TEST_F(CacheTest, L2HitIsCheaperThanMemory)
{
    // Warm L2 with the line, then evict it from L1 and re-access.
    l1_.access(0x1000, false, 0);
    // L1 is 4K 2-way, 64B lines -> 32 sets; two more lines mapping to
    // set 0 evict the first.
    l1_.access(0x1000 + 4096, false, 400);
    l1_.access(0x1000 + 8192, false, 800);
    auto r = l1_.access(0x1000, false, 1200);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 3u + 15u); // L2 hit this time
}

TEST_F(CacheTest, LruReplacement)
{
    // Fill both ways of set 0, touch the first, then insert a third:
    // the second (LRU) must be evicted.
    l1_.access(0x0000, false, 0);
    l1_.access(0x1000, false, 10);
    l1_.access(0x0000, false, 500);  // refresh line A (after fills done)
    l1_.access(0x2000, false, 600);  // evicts B
    auto ra = l1_.access(0x0000, false, 1200);
    EXPECT_TRUE(ra.hit);
    auto rb = l1_.access(0x1000, false, 1300);
    EXPECT_FALSE(rb.hit);
}

TEST_F(CacheTest, WritebackOnDirtyEviction)
{
    l1_.access(0x0000, true, 0);     // dirty line A in set 0
    l1_.access(0x1000, false, 400);
    l1_.access(0x2000, false, 800);  // evicts A -> writeback
    EXPECT_GE(l1_.writebacks.value(), 1.0);
}

TEST_F(CacheTest, InflightMergeCostsResidualLatency)
{
    auto r1 = l1_.access(0x3000, false, 0);
    ASSERT_FALSE(r1.hit);
    // Second access to the same line a few cycles later: residual only.
    auto r2 = l1_.access(0x3008, false, 5);
    EXPECT_LT(r2.latency, r1.latency);
    EXPECT_GE(r2.latency, 3u);
}

TEST_F(CacheTest, MshrExhaustionRejects)
{
    // L1 has 4 MSHRs; issue 5 distinct-line misses at the same cycle.
    unsigned rejects = 0;
    for (unsigned i = 0; i < 5; ++i) {
        auto r = l1_.access(0x10000 + i * 4096, false, 0);
        if (!r.accepted)
            ++rejects;
    }
    EXPECT_EQ(rejects, 1u);
    EXPECT_DOUBLE_EQ(l1_.mshrRejects.value(), 1.0);
    // After the misses complete, accesses are accepted again.
    auto r = l1_.access(0x90000, false, 10'000);
    EXPECT_TRUE(r.accepted);
}

TEST_F(CacheTest, InvalidateAllForgetsEverything)
{
    l1_.access(0x1000, false, 0);
    l1_.invalidateAll();
    auto r = l1_.access(0x1000, false, 5000);
    EXPECT_FALSE(r.hit);
}

TEST(MemSystem, ThreadTagSeparatesSpaces)
{
    const Addr a = MemSystem::threadTag(0, 0x1000);
    const Addr b = MemSystem::threadTag(1, 0x1000);
    EXPECT_NE(a, b);

    MemSystemParams params;
    params.dl1.sizeBytes = 4096;
    params.dl1.assoc = 1;
    MemSystem ms(params);
    ms.dataAccess(a, false, 0);
    auto r = ms.dataAccess(b, false, 1000);
    EXPECT_FALSE(r.hit) << "thread 1 must not hit thread 0's line";
}

TEST(MemSystem, Table1Defaults)
{
    // The defaults must match paper Table 1.
    MemSystemParams p;
    EXPECT_EQ(p.dl1.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.dl1.assoc, 4u);
    EXPECT_EQ(p.dl1.hitLatency, 3u);
    EXPECT_EQ(p.il1.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.il1.hitLatency, 1u);
    EXPECT_EQ(p.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l2.hitLatency, 15u);
    EXPECT_EQ(p.memLatency, 250u);
}

} // namespace
