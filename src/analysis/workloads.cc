#include "analysis/workloads.hh"

#include "analysis/cluster.hh"
#include "analysis/pca.hh"
#include "sim/logging.hh"

namespace vca::analysis {

std::vector<double>
workloadStats(const std::vector<std::string> &benchNames,
              unsigned physRegs, InstCount statInsts)
{
    std::vector<const isa::Program *> programs;
    for (const std::string &name : benchNames) {
        programs.push_back(
            wload::cachedProgram(wload::profileByName(name), false));
    }

    cpu::CpuParams params = cpu::CpuParams::preset(
        cpu::RenamerKind::Baseline, physRegs,
        static_cast<unsigned>(programs.size()));
    cpu::OooCpu cpu(params, programs);
    cpu.run(statInsts / 4, statInsts * 100, true);
    cpu.resetStats();
    auto res = cpu.run(statInsts, statInsts * 100, true);

    const double insts = std::max<double>(1.0, res.totalInsts);
    auto &mem = cpu.memSystem();
    auto rate = [&](double num, double den) {
        return den > 0 ? num / den : 0.0;
    };

    // The paper's "vector of 14 statistics (IPC, cache miss rate,
    // etc.)" -- the exact list is unspecified; this covers throughput,
    // balance, memory behaviour and control behaviour.
    std::vector<double> v;
    v.push_back(res.ipc);                                         // 1
    for (unsigned t = 0; t < 2; ++t) {                            // 2,3
        const double ti = t < res.threadInsts.size()
            ? static_cast<double>(res.threadInsts[t]) : 0.0;
        v.push_back(ti / insts);
    }
    v.push_back(rate(mem.dcache().misses.value(),
                     mem.dcache().accesses.value()));             // 4
    v.push_back(rate(mem.l2().misses.value(),
                     mem.l2().accesses.value()));                 // 5
    v.push_back(rate(mem.icache().misses.value(),
                     mem.icache().accesses.value()));             // 6
    v.push_back(cpu.mispredicts.value() * 1000.0 / insts);        // 7
    v.push_back(cpu.committedLoads.value() / insts);              // 8
    v.push_back(cpu.committedStores.value() / insts);             // 9
    v.push_back(cpu.squashedInsts.value() / insts);               // 10
    v.push_back(cpu.loadForwards.value() /
                std::max(1.0, cpu.committedLoads.value()));       // 11
    v.push_back(mem.dcache().accesses.value() / insts);           // 12
    v.push_back(cpu.branchesCommitted.value() / insts);           // 13
    v.push_back(rate(mem.dcache().writebacks.value(),
                     mem.dcache().accesses.value()));             // 14
    return v;
}

namespace {

std::vector<std::vector<std::string>>
selectFrom(const std::vector<std::vector<std::string>> &candidates,
           unsigned keep, unsigned physRegs, InstCount statInsts)
{
    Matrix stats;
    stats.reserve(candidates.size());
    for (const auto &names : candidates)
        stats.push_back(workloadStats(names, physRegs, statInsts));

    const Matrix projected = pcaProject(stats, 0.9);
    const auto assign = averageLinkageCluster(projected, keep);
    const auto medoids = clusterMedoids(projected, assign);

    std::vector<std::vector<std::string>> out;
    for (size_t idx : medoids)
        out.push_back(candidates[idx]);
    return out;
}

} // namespace

WorkloadSelection
selectWorkloads(const SelectionOptions &opts)
{
    WorkloadSelection sel;

    // All distinct two-benchmark pairings (the paper's 253 analog).
    std::vector<std::vector<std::string>> pairs;
    const auto &profiles = wload::spec2000Profiles();
    for (size_t i = 0; i < profiles.size(); ++i) {
        for (size_t j = i + 1; j < profiles.size(); ++j)
            pairs.push_back({profiles[i].name, profiles[j].name});
    }
    sel.twoThreadCandidates = pairs.size();
    sel.twoThread = selectFrom(pairs, opts.numTwoThread, opts.physRegs,
                               opts.statInsts);

    // Four-thread candidates: pairs of selected two-thread workloads.
    std::vector<std::vector<std::string>> quads;
    for (size_t i = 0; i < sel.twoThread.size(); ++i) {
        for (size_t j = i + 1; j < sel.twoThread.size(); ++j) {
            std::vector<std::string> q = sel.twoThread[i];
            q.insert(q.end(), sel.twoThread[j].begin(),
                     sel.twoThread[j].end());
            quads.push_back(std::move(q));
        }
    }
    sel.fourThreadCandidates = quads.size();
    sel.fourThread = selectFrom(quads, opts.numFourThread, opts.physRegs,
                                opts.statInsts);
    return sel;
}

} // namespace vca::analysis
