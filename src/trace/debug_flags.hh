/**
 * @file
 * gem5-style debug-flag registry and the DPRINTF tracing macro.
 *
 * Every trace point in the simulator is guarded by a named flag
 * (Fetch, Rename, Commit, VcaCache, ...). Flags are off by default,
 * enabled at runtime from a comma list ("Rename,Commit", "All",
 * "All,-Cache"), and the whole layer compiles out when VCA_NTRACE is
 * defined, leaving zero code at the trace points.
 *
 * DPRINTF(Flag, fmt, ...)       - trace, stamped with the current cycle
 * DPRINTFT(Flag, tid, fmt, ...) - same, also stamped with a thread id
 * DTRACE(Flag)                  - true when the flag is enabled
 *
 * Output goes to stderr by default; setTraceStream() redirects it
 * (e.g. to a file opened by --debug-file). The cycle stamp is the
 * value most recently published with setTraceCycle(), which OooCpu
 * does at the top of every tick.
 */

#ifndef VCA_TRACE_DEBUG_FLAGS_HH
#define VCA_TRACE_DEBUG_FLAGS_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace vca::trace {

/** Compile-time registry of all debug flags. */
enum class Flag : unsigned
{
    Fetch,      ///< instruction fetch, icache stalls, redirects
    Rename,     ///< rename-stage mapping and structural stalls
    Dispatch,   ///< IQ insertion / wakeup bookkeeping
    Issue,      ///< instruction selection and FU/port arbitration
    Commit,     ///< in-order retirement, one line per instruction
    Squash,     ///< pipeline flushes (mispredicts, traps, halts)
    Cache,      ///< cache misses, writebacks, MSHR rejections
    VcaRename,  ///< VCA rename-table hits/misses/evictions
    VcaCache,   ///< VCA spill/fill traffic through the ASTQ
    WindowTrap, ///< conventional-window overflow/underflow traps
    Interval,   ///< interval-statistics records as they close
    NumFlags,   ///< sentinel; not a real flag
};

constexpr unsigned numFlags = static_cast<unsigned>(Flag::NumFlags);

struct FlagInfo
{
    Flag flag;
    const char *name;
    const char *desc;
};

/** Static metadata for every flag (indexable by enum value). */
const std::vector<FlagInfo> &allFlags();

/** Name of one flag ("Rename"). */
const char *flagName(Flag f);

namespace detail {
// Storage behind the inline fast path. anyOn is the OR of all flags so
// a disabled tracer costs one load+branch per trace point.
extern bool flagsOn[numFlags];
extern bool anyOn;
} // namespace detail

/** Fast check: is this flag enabled? */
inline bool
flagEnabled(Flag f)
{
    return detail::anyOn && detail::flagsOn[static_cast<unsigned>(f)];
}

/** True if any flag at all is enabled. */
inline bool anyFlagEnabled() { return detail::anyOn; }

/** Enable / disable one flag. */
void setFlag(Flag f, bool on);

/**
 * Enable / disable a flag by name. "All" fans out to every flag.
 * Returns false for unknown names (caller decides how loud to be).
 */
bool setFlagByName(const std::string &name, bool on);

/**
 * Apply a comma-separated flag list in order: "Rename,Commit" enables
 * two flags; a "-" prefix disables ("All,-Cache" = everything except
 * Cache). Throws FatalError on an unknown flag name.
 */
void setFlagsFromString(const std::string &list);

/** Turn every flag off. */
void clearAllFlags();

/** Names of the currently enabled flags, in registry order. */
std::vector<std::string> enabledFlagNames();

/** One-line-per-flag help listing for --debug-help. */
std::string flagHelp();

/**
 * Redirect trace output (nullptr restores stderr). The stream must
 * outlive every trace point that fires.
 */
void setTraceStream(std::ostream *os);

/** Publish the cycle to stamp on subsequent trace lines. */
void setTraceCycle(Cycle c);

/** Cycle most recently published with setTraceCycle(). */
Cycle traceCycle();

/** Backend of DPRINTF; use the macro, not this. */
void tracePrintf(Flag f, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Backend of DPRINTFT; use the macro, not this. */
void tracePrintfTid(Flag f, unsigned tid, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace vca::trace

#ifdef VCA_NTRACE

#define DTRACE(flag) (false)
#define DPRINTF(flag, ...) \
    do {                   \
    } while (0)
#define DPRINTFT(flag, tid, ...) \
    do {                         \
    } while (0)

#else

#define DTRACE(flag) \
    (::vca::trace::flagEnabled(::vca::trace::Flag::flag))

#define DPRINTF(flag, ...)                                            \
    do {                                                              \
        if (DTRACE(flag)) {                                           \
            ::vca::trace::tracePrintf(::vca::trace::Flag::flag,       \
                                      __VA_ARGS__);                   \
        }                                                             \
    } while (0)

#define DPRINTFT(flag, tid, ...)                                      \
    do {                                                              \
        if (DTRACE(flag)) {                                           \
            ::vca::trace::tracePrintfTid(::vca::trace::Flag::flag,    \
                                         static_cast<unsigned>(tid),  \
                                         __VA_ARGS__);                \
        }                                                             \
    } while (0)

#endif // VCA_NTRACE

#endif // VCA_TRACE_DEBUG_FLAGS_HH
