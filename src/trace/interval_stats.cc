#include "trace/interval_stats.hh"

#include "sim/logging.hh"
#include "trace/debug_flags.hh"

namespace vca::trace {

IntervalRecorder::IntervalRecorder(InstCount every) : every_(every)
{
    if (every_ == 0)
        fatal("interval length must be positive");
}

void
IntervalRecorder::addProbe(std::string name,
                           std::function<double()> sample)
{
    probeNames_.push_back(std::move(name));
    probeFns_.push_back(std::move(sample));
    probeStart_.push_back(0);
}

void
IntervalRecorder::onCommit(Cycle now)
{
    if (!started_) {
        // The first commit anchors the window so warm-up commits that
        // happened before attachment don't skew the first interval.
        started_ = true;
        intervalStartCycle_ = now;
        for (size_t i = 0; i < probeFns_.size(); ++i)
            probeStart_[i] = probeFns_[i]();
    }
    ++committed_;
    if (committed_ - intervalStartInsts_ >= every_)
        closeInterval(now);
}

void
IntervalRecorder::finish(Cycle now)
{
    if (started_ && committed_ > intervalStartInsts_) {
        const bool partial =
            committed_ - intervalStartInsts_ < every_;
        closeInterval(now, partial);
    }
}

void
IntervalRecorder::closeInterval(Cycle now, bool partial)
{
    IntervalRecord rec;
    rec.partial = partial;
    rec.index = records_.size();
    rec.startCycle = intervalStartCycle_;
    rec.endCycle = now;
    rec.committed = committed_ - intervalStartInsts_;
    rec.committedCum = committed_;
    const Cycle span = now > intervalStartCycle_
        ? now - intervalStartCycle_ : 1;
    rec.ipc = static_cast<double>(rec.committed) /
              static_cast<double>(span);
    for (size_t i = 0; i < probeFns_.size(); ++i) {
        const double v = probeFns_[i]();
        rec.probes.push_back(v - probeStart_[i]);
        probeStart_[i] = v;
    }
    DPRINTF(Interval,
            "interval %llu: cycles [%llu, %llu] insts %llu ipc %.4f",
            (unsigned long long)rec.index,
            (unsigned long long)rec.startCycle,
            (unsigned long long)rec.endCycle,
            (unsigned long long)rec.committed, rec.ipc);
    records_.push_back(std::move(rec));
    intervalStartInsts_ = committed_;
    intervalStartCycle_ = now;
}

void
IntervalRecorder::writeJson(JsonWriter &w, const char *key) const
{
    w.key(key).beginArray();
    for (const IntervalRecord &rec : records_) {
        w.beginObject();
        w.key("interval").number(rec.index);
        w.key("start_cycle").number(
            static_cast<std::uint64_t>(rec.startCycle));
        w.key("end_cycle").number(
            static_cast<std::uint64_t>(rec.endCycle));
        w.key("committed").number(rec.committed);
        w.key("committed_cum").number(rec.committedCum);
        w.key("ipc").number(rec.ipc);
        w.key("partial").boolean(rec.partial);
        for (size_t i = 0; i < rec.probes.size(); ++i)
            w.key(probeNames_[i]).number(rec.probes[i]);
        w.endObject();
    }
    w.endArray();
}

} // namespace vca::trace
