/**
 * @file
 * Unit tests for the VCA core components: the RSID translation table,
 * the tagged rename table, the physical-register state machine, the
 * ASTQ, and direct VcaRenamer behaviour (fills, spills, overwrite
 * frees, squash undo, window shifting, port limits).
 */

#include <gtest/gtest.h>

#include "core/astq.hh"
#include "core/reg_state.hh"
#include "core/rename_table.hh"
#include "core/rsid_table.hh"
#include "core/vca_renamer.hh"
#include "cpu/params.hh"
#include "cpu/phys_regfile.hh"
#include "cpu/ooo_cpu.hh"
#include "func/func_sim.hh"
#include "isa/program.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

#include <deque>

namespace {

using namespace vca;
using namespace vca::core;
namespace layout = isa::layout;

// ---------------------------------------------------------------------
// RSID table
// ---------------------------------------------------------------------

class RsidTest : public ::testing::Test
{
  protected:
    RsidTest() : root_("t"), table_(4, 16, &root_) {}
    stats::StatGroup root_;
    RsidTable table_;
};

TEST_F(RsidTest, LookupMissThenAllocateHit)
{
    const Addr a = 0x6000'0001'0000;
    EXPECT_EQ(table_.lookup(a), RsidTable::noRsid);
    const int r = table_.allocate(a);
    ASSERT_GE(r, 0);
    EXPECT_EQ(table_.lookup(a), r);
    // Addresses in the same 64K region share the RSID.
    EXPECT_EQ(table_.lookup(a + 0x8000), r);
    // A different region misses.
    EXPECT_EQ(table_.lookup(a + 0x10000), RsidTable::noRsid);
}

TEST_F(RsidTest, UnusedEntriesReclaimedWithoutFlush)
{
    for (Addr i = 0; i < 4; ++i)
        ASSERT_GE(table_.allocate(i << 16), 0);
    // Table full, but all refCounts are zero: 5th allocation reclaims.
    EXPECT_GE(table_.allocate(Addr(9) << 16), 0);
    EXPECT_GE(table_.reclaimsClean.value(), 1.0);
    EXPECT_DOUBLE_EQ(table_.flushes.value(), 0.0);
}

TEST_F(RsidTest, PinnedEntriesForceVictimFlow)
{
    for (Addr i = 0; i < 4; ++i) {
        const int r = table_.allocate(i << 16);
        ASSERT_GE(r, 0);
        table_.addRef(r);
    }
    // All in use: allocation fails, victim() nominates the LRU one.
    EXPECT_EQ(table_.allocate(Addr(9) << 16), RsidTable::noRsid);
    const int victim = table_.victim();
    ASSERT_GE(victim, 0);
    table_.dropRef(victim);
    table_.invalidate(victim);
    EXPECT_GE(table_.allocate(Addr(9) << 16), 0);
    EXPECT_DOUBLE_EQ(table_.flushes.value(), 1.0);
}

TEST_F(RsidTest, RefCountUnderflowPanics)
{
    const int r = table_.allocate(0);
    table_.addRef(r);
    table_.dropRef(r);
    EXPECT_THROW(table_.dropRef(r), PanicError);
}

// ---------------------------------------------------------------------
// Rename table
// ---------------------------------------------------------------------

TEST(RenameTableTest, SetConflictsExposeFreeWays)
{
    RenameTable t(64, 2);
    // Three addresses mapping to the same set (stride 64 slots).
    const Addr base = layout::regSpaceBase;
    const Addr a0 = base, a1 = base + 64 * 8, a2 = base + 128 * 8;
    ASSERT_EQ(t.setIndex(a0), t.setIndex(a1));
    ASSERT_EQ(t.setIndex(a0), t.setIndex(a2));

    TableEntry *e0 = t.freeWay(a0);
    ASSERT_NE(e0, nullptr);
    t.install(e0, a0, 0);
    TableEntry *e1 = t.freeWay(a1);
    ASSERT_NE(e1, nullptr);
    t.install(e1, a1, 0);
    EXPECT_EQ(t.freeWay(a2), nullptr) << "set must be full";

    EXPECT_EQ(t.lookup(a0), e0);
    EXPECT_EQ(t.lookup(a1), e1);
    EXPECT_EQ(t.lookup(a2), nullptr);
}

TEST(RenameTableTest, LruOrderingOfWays)
{
    RenameTable t(64, 3);
    const Addr base = layout::regSpaceBase;
    const Addr addrs[3] = {base, base + 64 * 8, base + 128 * 8};
    for (Addr a : addrs)
        t.install(t.freeWay(a), a, 0);
    // Touch a0 so it is most recent.
    t.lookup(addrs[0]);
    auto ways = t.waysByLru(addrs[0]);
    ASSERT_EQ(ways.size(), 3u);
    EXPECT_EQ(ways.back()->addr, addrs[0]);
}

TEST(RenameTableTest, UnboundedModeNeverConflicts)
{
    RenameTable t(0, 0);
    ASSERT_TRUE(t.unbounded());
    for (Addr i = 0; i < 1000; ++i) {
        const Addr a = layout::regSpaceBase + i * 8;
        TableEntry *e = t.freeWay(a);
        ASSERT_NE(e, nullptr);
        t.install(e, a, 0);
    }
    EXPECT_EQ(t.validCount(), 1000u);
    for (Addr i = 0; i < 1000; ++i)
        EXPECT_NE(t.lookup(layout::regSpaceBase + i * 8), nullptr);
}

TEST(RenameTableTest, InvalidateRemovesMapping)
{
    RenameTable t(64, 2);
    const Addr a = layout::regSpaceBase + 8;
    TableEntry *e = t.freeWay(a);
    t.install(e, a, 0);
    ASSERT_NE(t.lookup(a), nullptr);
    t.invalidate(e);
    EXPECT_EQ(t.lookup(a), nullptr);
    EXPECT_EQ(t.validCount(), 0u);
}

// ---------------------------------------------------------------------
// Physical register state
// ---------------------------------------------------------------------

TEST(RegStateTest, FreeListLifo)
{
    RegStateArray rs(4);
    EXPECT_EQ(rs.numFree(), 4u);
    const PhysRegIndex p = rs.popFree();
    EXPECT_EQ(rs.numFree(), 3u);
    rs[p].addr = 0x1000;
    rs.pushFree(p);
    EXPECT_EQ(rs.numFree(), 4u);
    EXPECT_TRUE(rs[p].free()) << "pushFree must clear state";
}

TEST(RegStateTest, EvictabilityRules)
{
    PhysState s;
    EXPECT_FALSE(s.evictable()) << "free registers are not victims";
    s.addr = 0x1000;
    EXPECT_FALSE(s.evictable()) << "uncommitted";
    s.committed = true;
    EXPECT_TRUE(s.evictable());
    s.refCount = 1;
    EXPECT_FALSE(s.evictable()) << "pinned";
    s.refCount = 0;
    s.fillPending = true;
    EXPECT_FALSE(s.evictable()) << "fill in flight";
}

TEST(RegStateTest, VictimPrefersLruAndAvoidsOverwritePending)
{
    RegStateArray rs(4);
    std::vector<PhysRegIndex> order;
    for (unsigned i = 0; i < 4; ++i) {
        const PhysRegIndex p = rs.popFree();
        rs[p].addr = 0x1000 + 8 * i;
        rs[p].committed = true;
        rs.touch(p);
        order.push_back(p);
    }
    // The first-touched register is LRU but has a pending overwriter:
    // the second-touched (next LRU without overwriters) must win.
    rs[order[0]].overwriters = 1;
    EXPECT_EQ(rs.findVictim(false), order[1]);
}

TEST(RegStateTest, OverwritePendingUsedAsLastResort)
{
    RegStateArray rs(2);
    std::vector<PhysRegIndex> order;
    for (unsigned i = 0; i < 2; ++i) {
        const PhysRegIndex p = rs.popFree();
        rs[p].addr = 0x1000 + 8 * i;
        rs[p].committed = true;
        rs[p].overwriters = 1;
        rs.touch(p);
        order.push_back(p);
    }
    EXPECT_EQ(rs.findVictim(false), order[0]) << "LRU among fallbacks";
}

TEST(RegStateTest, RequireCleanSkipsDirty)
{
    RegStateArray rs(2);
    for (unsigned i = 0; i < 2; ++i) {
        const PhysRegIndex p = rs.popFree();
        rs[p].addr = 0x1000 + 8 * i;
        rs[p].committed = true;
        rs.touch(p);
    }
    rs[0].dirty = true;
    EXPECT_EQ(rs.findVictim(true), 1);
    rs[1].dirty = true;
    EXPECT_EQ(rs.findVictim(true), invalidPhysReg);
}

// ---------------------------------------------------------------------
// ASTQ
// ---------------------------------------------------------------------

TEST(AstqTest, CapacityAndWriteLimits)
{
    stats::StatGroup root("t");
    Astq q(4, 2, &root);
    q.beginCycle();
    EXPECT_TRUE(q.canEnqueue(1));
    q.enqueue({true, 0x1000, invalidPhysReg, 0});
    q.enqueue({false, 0x1008, 3, 0});
    // Two writes this cycle: the per-cycle limit is reached.
    EXPECT_FALSE(q.canEnqueue(1));
    q.beginCycle();
    EXPECT_TRUE(q.canEnqueue(1));
    q.enqueue({true, 0x1010, invalidPhysReg, 0});
    q.enqueue({true, 0x1018, invalidPhysReg, 0});
    q.beginCycle();
    EXPECT_FALSE(q.canEnqueue(1)) << "queue full at 4 entries";
    EXPECT_EQ(q.size(), 4u);

    // FIFO order.
    EXPECT_EQ(q.pop().addr, 0x1000u);
    EXPECT_EQ(q.pop().addr, 0x1008u);
    EXPECT_TRUE(q.canEnqueue(1));
}

TEST(AstqTest, EnqueuePastLimitPanics)
{
    stats::StatGroup root("t");
    Astq q(1, 2, &root);
    q.beginCycle();
    q.enqueue({true, 0, invalidPhysReg, 0});
    EXPECT_THROW(q.enqueue({true, 8, invalidPhysReg, 0}), PanicError);
}

TEST(AstqTest, ForceBypassesLimits)
{
    stats::StatGroup root("t");
    Astq q(1, 1, &root);
    q.beginCycle();
    q.enqueue({true, 0, invalidPhysReg, 0});
    q.enqueueForce({true, 8, invalidPhysReg, 0});
    EXPECT_EQ(q.size(), 2u);
}

// ---------------------------------------------------------------------
// VcaRenamer direct unit tests
// ---------------------------------------------------------------------

class VcaRenamerTest : public ::testing::Test
{
  protected:
    VcaRenamerTest()
        : root_("t"),
          params_(cpu::CpuParams::preset(cpu::RenamerKind::Vca, 32)),
          regs_(params_.physRegs)
    {
        memories_.push_back(&memory_);
        renamer_ = std::make_unique<VcaRenamer>(params_, regs_,
                                                memories_, false, &root_);
        renamer_->setThreadContext(0, true);
    }

    cpu::DynInst *
    makeInst(const isa::StaticInst &si, std::uint64_t seq)
    {
        auto *inst = pool_.acquire();
        inst->si = &si;
        inst->tid = 0;
        inst->seq = seq;
        return inst;
    }

    stats::StatGroup root_;
    cpu::CpuParams params_;
    cpu::PhysRegFile regs_;
    mem::SparseMemory memory_;
    std::vector<mem::SparseMemory *> memories_;
    std::unique_ptr<VcaRenamer> renamer_;
    cpu::InstPool pool_;
    std::deque<isa::StaticInst> insts_;
};

TEST_F(VcaRenamerTest, SourceMissGeneratesFill)
{
    // add r12, r10, r11 : both sources cold -> two fills.
    insts_.push_back(isa::decode(isa::encodeR(isa::Opcode::Add,
                                              12, 10, 11)));
    auto *inst = makeInst(insts_.back(), 1);
    renamer_->beginCycle(1);
    ASSERT_TRUE(renamer_->rename(*inst, 1));
    EXPECT_DOUBLE_EQ(renamer_->fills.value(), 2.0);
    EXPECT_TRUE(renamer_->hasTransferOp());
    // Fill targets are distinct valid registers, not ready yet.
    EXPECT_NE(inst->srcPhys[0], inst->srcPhys[1]);
    EXPECT_FALSE(regs_.isReady(inst->srcPhys[0]));

    // Completing the fill publishes the memory value.
    memory_.write(inst->srcAddr[0], 777);
    auto op = renamer_->popTransferOp();
    EXPECT_FALSE(op.isStore);
    renamer_->transferDone(op);
    EXPECT_TRUE(regs_.isReady(op.reg));
    EXPECT_EQ(regs_.read(op.reg), 777u);
    renamer_->validate();
}

TEST_F(VcaRenamerTest, SecondReadHitsWithoutFill)
{
    insts_.push_back(isa::decode(isa::encodeI(isa::Opcode::Addi,
                                              12, 10, 1)));
    auto *a = makeInst(insts_.back(), 1);
    renamer_->beginCycle(1);
    ASSERT_TRUE(renamer_->rename(*a, 1));
    const double fillsAfterFirst = renamer_->fills.value();

    insts_.push_back(isa::decode(isa::encodeI(isa::Opcode::Addi,
                                              13, 10, 2)));
    auto *b = makeInst(insts_.back(), 2);
    renamer_->beginCycle(2);
    ASSERT_TRUE(renamer_->rename(*b, 2));
    EXPECT_DOUBLE_EQ(renamer_->fills.value(), fillsAfterFirst)
        << "second read of r10 must hit the rename table";
    EXPECT_EQ(a->srcPhys[0], b->srcPhys[0]);
}

TEST_F(VcaRenamerTest, CommitOverwriteFreesWithoutSpill)
{
    // Two writes to r12: committing the second frees the first's
    // register with no spill even though it is dirty.
    for (int i = 0; i < 2; ++i) {
        insts_.push_back(isa::decode(isa::encodeI(isa::Opcode::Addi,
                                                  12, 0, i)));
    }
    auto *a = makeInst(insts_[0], 1);
    auto *b = makeInst(insts_[1], 2);
    renamer_->beginCycle(1);
    ASSERT_TRUE(renamer_->rename(*a, 1));
    ASSERT_TRUE(renamer_->rename(*b, 1));
    renamer_->commitInst(*a);
    const double spillsBefore = renamer_->spills.value();
    renamer_->commitInst(*b);
    EXPECT_DOUBLE_EQ(renamer_->spills.value(), spillsBefore);
    EXPECT_GE(renamer_->overwriteFrees.value(), 1.0);
    renamer_->validate();
}

TEST_F(VcaRenamerTest, SquashRestoresPreviousMapping)
{
    insts_.push_back(isa::decode(isa::encodeI(isa::Opcode::Addi,
                                              12, 0, 1)));
    insts_.push_back(isa::decode(isa::encodeI(isa::Opcode::Addi,
                                              12, 0, 2)));
    insts_.push_back(isa::decode(isa::encodeR(isa::Opcode::Add,
                                              13, 12, 12)));
    auto *a = makeInst(insts_[0], 1);
    auto *b = makeInst(insts_[1], 2);
    renamer_->beginCycle(1);
    ASSERT_TRUE(renamer_->rename(*a, 1));
    ASSERT_TRUE(renamer_->rename(*b, 1));
    // Squash the second write; a reader renamed afterwards must see
    // the first write's register again.
    renamer_->squashInst(*b);
    auto *c = makeInst(insts_[2], 3);
    renamer_->beginCycle(2);
    ASSERT_TRUE(renamer_->rename(*c, 2));
    EXPECT_EQ(c->srcPhys[0], a->destPhys);
    renamer_->validate();
}

TEST_F(VcaRenamerTest, CallShiftsWindowBasePointer)
{
    insts_.push_back(isa::decode(isa::encodeJ(isa::Opcode::Call, 100)));
    insts_.push_back(isa::decode(isa::encodeJ(isa::Opcode::Ret, 0)));
    const Addr w0 = renamer_->windowBase(0);
    auto *call = makeInst(insts_[0], 1);
    renamer_->beginCycle(1);
    ASSERT_TRUE(renamer_->rename(*call, 1));
    EXPECT_EQ(renamer_->windowBase(0), w0 - layout::windowFrameBytes);
    // ra was renamed in the callee's frame.
    EXPECT_EQ(call->destAddr,
              renamer_->windowBase(0) +
                  isa::windowSlot(isa::RegClass::Int, isa::regRa) * 8);

    auto *ret = makeInst(insts_[1], 2);
    ASSERT_TRUE(renamer_->rename(*ret, 1));
    EXPECT_EQ(renamer_->windowBase(0), w0);
    // The ret read ra from the callee frame (same address).
    EXPECT_EQ(ret->srcAddr[0], call->destAddr);

    // Squash both: pointer returns through the undo chain.
    renamer_->squashInst(*ret);
    renamer_->squashInst(*call);
    EXPECT_EQ(renamer_->windowBase(0), w0);
    renamer_->validate();
}

TEST_F(VcaRenamerTest, SpillWritesValueToBackingMemory)
{
    // Fill the 32-register file with committed dirty values, then force
    // replacement and verify a spilled value lands in memory.
    std::uint64_t seq = 1;
    std::vector<cpu::DynInst *> producers;
    for (RegIndex r = 10; r < 32; ++r) {
        insts_.push_back(isa::decode(
            isa::encodeI(isa::Opcode::Addi, r, 0,
                         static_cast<std::int32_t>(r))));
    }
    size_t k = 0;
    for (RegIndex r = 10; r < 32; ++r, ++k) {
        auto *p = makeInst(insts_[k], seq++);
        renamer_->beginCycle(seq);
        ASSERT_TRUE(renamer_->rename(*p, seq));
        regs_.write(p->destPhys, 100 + r); // "execute"
        regs_.setReady(p->destPhys, true);
        renamer_->commitInst(*p);
        producers.push_back(p);
    }
    // fp destinations to push past capacity (32 regs total).
    std::deque<isa::StaticInst> fpInsts;
    for (RegIndex r = 8; r < 28; ++r) {
        fpInsts.push_back(isa::decode(
            isa::encodeR(isa::Opcode::Fmov, r, r, 0)));
    }
    double spilled = 0;
    for (size_t i = 0; i < fpInsts.size() && spilled == 0; ++i) {
        auto *p = makeInst(fpInsts[i], seq++);
        // Retry across "cycles" like the pipeline does on a stall.
        bool ok = false;
        for (int attempt = 0; attempt < 8 && !ok; ++attempt) {
            renamer_->beginCycle(seq + attempt);
            ok = renamer_->rename(*p, seq + attempt);
            while (renamer_->hasTransferOp()) {
                auto op = renamer_->popTransferOp();
                renamer_->transferDone(op);
            }
        }
        ASSERT_TRUE(ok) << "rename never succeeded";
        spilled = renamer_->spills.value();
    }
    ASSERT_GT(spilled, 0.0) << "replacement must have spilled";
    // At least one of the committed values must now be in memory at
    // its logical address.
    bool found = false;
    for (cpu::DynInst *p : producers) {
        if (memory_.read(p->destAddr) == regs_.read(p->destPhys) &&
            memory_.read(p->destAddr) != 0) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(VcaRenamerTest, RenamePortLimitStalls)
{
    // Warm six source registers (one per cycle so the ASTQ write
    // limit never interferes).
    std::uint64_t seq = 1;
    for (RegIndex r = 10; r < 16; ++r) {
        insts_.push_back(isa::decode(
            isa::encodeI(isa::Opcode::Addi, r, 0, 1)));
        auto *w = makeInst(insts_.back(), seq);
        renamer_->beginCycle(seq);
        ASSERT_TRUE(renamer_->rename(*w, seq));
        renamer_->commitInst(*w);
        ++seq;
    }

    // Each instruction reads two distinct warm registers and writes
    // one: 3 ports each. The 8-port limit admits two per cycle; the
    // third must stall and succeed the following cycle.
    for (int i = 0; i < 3; ++i) {
        insts_.push_back(isa::decode(isa::encodeR(
            isa::Opcode::Add, static_cast<RegIndex>(20 + i),
            static_cast<RegIndex>(10 + 2 * i),
            static_cast<RegIndex>(11 + 2 * i))));
    }
    auto *a = makeInst(insts_[insts_.size() - 3], seq);
    auto *b = makeInst(insts_[insts_.size() - 2], seq + 1);
    auto *c = makeInst(insts_[insts_.size() - 1], seq + 2);
    renamer_->beginCycle(seq);
    ASSERT_TRUE(renamer_->rename(*a, seq));
    ASSERT_TRUE(renamer_->rename(*b, seq));
    EXPECT_FALSE(renamer_->rename(*c, seq));
    EXPECT_GE(renamer_->stallsPorts.value(), 1.0);
    // Next cycle the ports are fresh.
    renamer_->beginCycle(seq + 1);
    EXPECT_TRUE(renamer_->rename(*c, seq + 1));
}

TEST_F(VcaRenamerTest, ReadCombiningSavesPorts)
{
    // Four instructions all reading the same register pair: reads
    // combine, so all four (4 dest ports + 2 read ports = 6 <= 8) fit
    // in one cycle.
    for (int i = 0; i < 4; ++i) {
        insts_.push_back(isa::decode(isa::encodeR(
            isa::Opcode::Add, static_cast<RegIndex>(20 + i), 10, 11)));
    }
    renamer_->beginCycle(1);
    for (int i = 0; i < 4; ++i) {
        auto *p = makeInst(insts_[i], 1 + i);
        EXPECT_TRUE(renamer_->rename(*p, 1)) << "inst " << i;
    }
    EXPECT_DOUBLE_EQ(renamer_->stallsPorts.value(), 0.0);
}

} // namespace

// ---------------------------------------------------------------------
// Dead-value hints (the paper's future-work extension)
// ---------------------------------------------------------------------

namespace deadhints {

double
spillsWithHints(bool hints, double *ipcOut)
{
    using namespace vca;
    const auto &prof = wload::profileByName("perlbmk_535");
    const isa::Program *prog = wload::cachedProgram(prof, true);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 112);
    params.vcaDeadValueHints = hints;
    cpu::OooCpu cpu(params, {prog});
    cpu.run(10'000, 2'000'000);
    cpu.resetStats();
    auto res = cpu.run(60'000, 6'000'000);
    if (ipcOut)
        *ipcOut = res.ipc;
    cpu.renamer().validate();
    const auto *s = dynamic_cast<const stats::Scalar *>(
        static_cast<const stats::StatGroup &>(cpu).find("spills"));
    return s ? s->value() : -1.0;
}

} // namespace deadhints

TEST(DeadValueHints, ReducesSpillsWithoutChangingResults)
{
    double ipcOff = 0, ipcOn = 0;
    const double spillsOff = deadhints::spillsWithHints(false, &ipcOff);
    const double spillsOn = deadhints::spillsWithHints(true, &ipcOn);
    ASSERT_GE(spillsOff, 0.0);
    EXPECT_LT(spillsOn, spillsOff)
        << "dead frames must stop being written back";
    EXPECT_GE(ipcOn, ipcOff * 0.99) << "hints must not hurt";
}

TEST(DeadValueHints, CosimStillExact)
{
    using namespace vca;
    const auto &prof = wload::profileByName("crafty");
    const isa::Program *prog = wload::cachedProgram(prof, true);
    cpu::CpuParams params =
        cpu::CpuParams::preset(cpu::RenamerKind::Vca, 96);
    params.vcaDeadValueHints = true;
    cpu::OooCpu cpu(params, {prog});
    mem::SparseMemory refMem;
    func::FuncSim ref(*prog, refMem);
    bool mismatch = false;
    cpu.addCommitListener([&](const cpu::DynInst &inst) {
        func::StepRecord rec;
        ref.step(rec);
        mismatch = mismatch || rec.pc != inst.pc ||
                   (inst.si->hasDest && !inst.si->isCall &&
                    rec.destValue != inst.result);
    });
    cpu.run(40'000, 4'000'000);
    EXPECT_FALSE(mismatch);
    cpu.renamer().validate();
}
