/**
 * @file
 * Unit tests for the functional simulator: instruction semantics, the
 * windowed ABI (window shifting, cross-window isolation, deep
 * recursion), and hand-written program execution.
 */

#include <gtest/gtest.h>

#include "func/func_sim.hh"
#include "isa/program.hh"
#include "wload/asm_builder.hh"

namespace {

using namespace vca;
using namespace vca::isa;
using vca::wload::AsmBuilder;

isa::Program
makeProgram(AsmBuilder &b, bool windowed = false)
{
    isa::Program p;
    p.name = "test";
    p.windowedAbi = windowed;
    p.code = b.seal();
    p.finalize();
    return p;
}

func::FuncSimStats
runToHalt(const isa::Program &p, mem::SparseMemory &m,
          std::uint64_t *r5Out = nullptr)
{
    func::FuncSim sim(p, m);
    const auto stats = sim.run(1'000'000);
    EXPECT_TRUE(sim.halted()) << "program did not halt";
    if (r5Out)
        *r5Out = sim.readIntReg(5);
    return stats;
}

TEST(FuncSim, BasicArithmetic)
{
    AsmBuilder b;
    b.addi(4, regZero, 20);
    b.addi(5, regZero, 22);
    b.emitR(Opcode::Add, 5, 4, 5);
    b.halt();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    const auto stats = runToHalt(makeProgram(b), m, &r5);
    EXPECT_EQ(r5, 42u);
    EXPECT_EQ(stats.insts, 3u);
}

TEST(FuncSim, SubWithZeroFirstOperand)
{
    // r5 = r0 - r4 must be -7, not 7 (positional operands).
    AsmBuilder b;
    b.addi(4, regZero, 7);
    b.emitR(Opcode::Sub, 5, regZero, 4);
    b.halt();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    runToHalt(makeProgram(b), m, &r5);
    EXPECT_EQ(static_cast<std::int64_t>(r5), -7);
}

TEST(FuncSim, DivisionEdgeCases)
{
    AsmBuilder b;
    b.addi(4, regZero, 10);
    b.emitR(Opcode::Div, 5, 4, regZero); // div by zero -> 0
    b.halt();
    mem::SparseMemory m;
    std::uint64_t r5 = 1;
    runToHalt(makeProgram(b), m, &r5);
    EXPECT_EQ(r5, 0u);
}

TEST(FuncSim, LoadStoreRoundTrip)
{
    AsmBuilder b;
    b.li(2, 0x2000'0000);
    b.addi(10, regZero, 1234);
    b.st(2, 10, 16);
    b.ld(5, 2, 16);
    b.halt();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    const auto stats = runToHalt(makeProgram(b), m, &r5);
    EXPECT_EQ(r5, 1234u);
    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.stores, 1u);
}

TEST(FuncSim, FloatingPoint)
{
    AsmBuilder b;
    b.addi(4, regZero, 3);
    b.emitR(Opcode::Fcvtif, 8, 4, regZero);  // f8 = 3.0
    b.emitR(Opcode::Fmul, 9, 8, 8);          // f9 = 9.0
    b.emitR(Opcode::Fadd, 9, 9, 8);          // f9 = 12.0
    b.emitR(Opcode::Fcvtfi, 5, 9, regZero);  // r5 = 12
    b.halt();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    runToHalt(makeProgram(b), m, &r5);
    EXPECT_EQ(r5, 12u);
}

TEST(FuncSim, BranchTakenAndNotTaken)
{
    AsmBuilder b;
    b.addi(4, regZero, 1);
    auto skip = b.newLabel();
    b.branch(Opcode::Bne, 4, regZero, skip); // taken
    b.addi(5, regZero, 111);                 // skipped
    b.bind(skip);
    b.addi(6, regZero, 7);
    auto skip2 = b.newLabel();
    b.branch(Opcode::Beq, 4, regZero, skip2); // not taken
    b.addi(5, regZero, 42);
    b.bind(skip2);
    b.halt();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    const auto stats = runToHalt(makeProgram(b), m, &r5);
    EXPECT_EQ(r5, 42u);
    EXPECT_EQ(stats.condBranches, 2u);
    EXPECT_EQ(stats.takenCondBranches, 1u);
}

TEST(FuncSim, LoopSum)
{
    // Sum 1..10 into r5.
    AsmBuilder b;
    b.addi(13, regZero, 10);
    b.addi(5, regZero, 0);
    auto top = b.newLabel();
    b.bind(top);
    b.emitR(Opcode::Add, 5, 5, 13);
    b.addi(13, 13, -1);
    b.branch(Opcode::Bne, 13, regZero, top);
    b.halt();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    runToHalt(makeProgram(b), m, &r5);
    EXPECT_EQ(r5, 55u);
}

TEST(FuncSim, CallAndReturnNonWindowed)
{
    AsmBuilder b;
    auto fn = b.newLabel();
    b.addi(4, regZero, 20);
    b.call(fn);
    b.mov(5, 4);
    b.halt();
    b.bind(fn);
    b.addi(4, 4, 22);
    b.ret();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    const auto stats = runToHalt(makeProgram(b, false), m, &r5);
    EXPECT_EQ(r5, 42u);
    EXPECT_EQ(stats.calls, 1u);
}

TEST(FuncSim, WindowedCallIsolatesWindowedRegisters)
{
    // Caller's r10 must survive a callee that clobbers r10, with NO
    // save/restore code, under the windowed ABI.
    AsmBuilder b;
    auto fn = b.newLabel();
    b.addi(10, regZero, 1111);
    b.call(fn);
    b.mov(5, 10);
    b.halt();
    b.bind(fn);
    b.addi(10, regZero, 2222); // clobber (own window)
    b.ret();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    runToHalt(makeProgram(b, true), m, &r5);
    EXPECT_EQ(r5, 1111u);
}

TEST(FuncSim, NonWindowedCallDoesNotIsolate)
{
    // Same program, non-windowed ABI: the clobber is visible.
    AsmBuilder b;
    auto fn = b.newLabel();
    b.addi(10, regZero, 1111);
    b.call(fn);
    b.mov(5, 10);
    b.halt();
    b.bind(fn);
    b.addi(10, regZero, 2222);
    b.ret();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    runToHalt(makeProgram(b, false), m, &r5);
    EXPECT_EQ(r5, 2222u);
}

TEST(FuncSim, WindowedGlobalsAreShared)
{
    // Globals (argument registers) pass values through calls.
    AsmBuilder b;
    auto fn = b.newLabel();
    b.addi(4, regZero, 40);
    b.call(fn);
    b.mov(5, 4);
    b.halt();
    b.bind(fn);
    b.addi(4, 4, 2);
    b.ret();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    runToHalt(makeProgram(b, true), m, &r5);
    EXPECT_EQ(r5, 42u);
}

TEST(FuncSim, WindowedDeepRecursionFibonacci)
{
    // fib(n) with per-frame locals in windowed registers, no explicit
    // saves: exercises many live windows at once.
    AsmBuilder b;
    auto fib = b.newLabel();
    b.addi(4, regZero, 12); // a0 = 12
    b.call(fib);
    b.mov(5, 4);
    b.halt();

    b.bind(fib);
    auto recurse = b.newLabel();
    auto done = b.newLabel();
    b.addi(10, regZero, 2);
    b.branch(Opcode::Bge, 4, 10, recurse);
    b.jmp(done);               // fib(0)=0, fib(1)=1: a0 unchanged
    b.bind(recurse);
    b.mov(10, 4);              // save n in windowed local
    b.addi(4, 10, -1);
    b.call(fib);               // fib(n-1)
    b.mov(11, 4);              // windowed local
    b.addi(4, 10, -2);
    b.call(fib);               // fib(n-2)
    b.emitR(Opcode::Add, 4, 4, 11);
    b.bind(done);
    b.ret();

    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    const auto stats = runToHalt(makeProgram(b, true), m, &r5);
    EXPECT_EQ(r5, 144u); // fib(12)
    EXPECT_GT(stats.maxCallDepth, 8u);
}

TEST(FuncSim, WindowBasePointerMoves)
{
    AsmBuilder b;
    auto fn = b.newLabel();
    b.call(fn);
    b.halt();
    b.bind(fn);
    b.nop();
    b.ret();
    mem::SparseMemory m;
    isa::Program p = makeProgram(b, true);
    func::FuncSim sim(p, m);
    const Addr w0 = sim.windowBase();
    func::StepRecord rec;
    sim.step(rec); // call
    EXPECT_EQ(sim.windowBase(), w0 - layout::windowFrameBytes);
    sim.step(rec); // nop
    sim.step(rec); // ret
    EXPECT_EQ(sim.windowBase(), w0);
}

TEST(FuncSim, DataSegmentsLoaded)
{
    isa::Program p;
    p.name = "data";
    AsmBuilder b;
    b.li(2, 0x1000'0000);
    b.ld(5, 2, 8);
    b.halt();
    p.code = b.seal();
    p.data.push_back({0x1000'0000, {0, 777, 0}});
    p.finalize();
    mem::SparseMemory m;
    std::uint64_t r5 = 0;
    runToHalt(p, m, &r5);
    EXPECT_EQ(r5, 777u);
}

TEST(FuncSim, RunRespectsInstructionLimit)
{
    // Infinite loop.
    AsmBuilder b;
    auto top = b.newLabel();
    b.bind(top);
    b.addi(5, 5, 1);
    b.jmp(top);
    mem::SparseMemory m;
    isa::Program p = makeProgram(b);
    func::FuncSim sim(p, m);
    const auto stats = sim.run(1000);
    EXPECT_FALSE(sim.halted());
    EXPECT_EQ(stats.insts, 1000u);
}

TEST(FuncSim, CaptureStateReflectsArchitecturalRegisters)
{
    AsmBuilder b;
    b.addi(4, regZero, 20);
    b.addi(5, regZero, 22);
    b.emitR(Opcode::Add, 6, 4, 5);
    b.halt();
    mem::SparseMemory m;
    isa::Program p = makeProgram(b);
    func::FuncSim sim(p, m);
    func::StepRecord rec;
    sim.step(rec);
    sim.step(rec);
    sim.step(rec);

    const func::ArchState s = sim.captureState();
    EXPECT_EQ(s.pc, sim.pc());
    EXPECT_FALSE(s.windowedAbi);
    EXPECT_EQ(s.callDepth, 0u);
    for (RegIndex r = 0; r < isa::numIntRegs; ++r)
        EXPECT_EQ(s.intRegs[r], sim.readIntReg(r)) << "r" << unsigned(r);
    EXPECT_EQ(s.intRegs[6], 42u);
}

TEST(FuncSim, CaptureStateTracksWindowOnCallAndReturn)
{
    AsmBuilder b;
    auto fn = b.newLabel();
    b.addi(4, regZero, 7);
    b.call(fn);
    b.halt();
    b.bind(fn);
    b.addi(5, 4, 1); // callee sees a4 in the new window
    b.ret();
    mem::SparseMemory m;
    isa::Program p = makeProgram(b, true);
    func::FuncSim sim(p, m);
    func::StepRecord rec;
    sim.step(rec); // addi
    sim.step(rec); // call -> window shifts
    const func::ArchState in = sim.captureState();
    EXPECT_TRUE(in.windowedAbi);
    EXPECT_EQ(in.callDepth, 1u);
    EXPECT_EQ(in.windowBase, sim.windowBase());
    sim.step(rec); // addi in callee
    sim.step(rec); // ret -> window shifts back
    const func::ArchState out = sim.captureState();
    EXPECT_EQ(out.callDepth, 0u);
    EXPECT_EQ(out.windowBase, in.windowBase + layout::windowFrameBytes);
}

TEST(FuncSim, RunFastMatchesStepOnWindowedRecursion)
{
    // Deep recursion through the windowed ABI: the decoded-BB fast
    // path and the stepping interpreter must stay in lockstep on pc,
    // depth, window base and every visible register.
    AsmBuilder b;
    auto fib = b.newLabel();
    auto recurse = b.newLabel();
    auto done = b.newLabel();
    b.addi(4, regZero, 12);
    b.call(fib);
    b.halt();
    b.bind(fib);
    b.addi(5, regZero, 2);
    b.branch(Opcode::Bge, 4, 5, recurse);
    b.jmp(done);
    b.bind(recurse);
    b.mov(10, 4);
    b.addi(4, 10, -1);
    b.call(fib);
    b.mov(11, 4);
    b.addi(4, 10, -2);
    b.call(fib);
    b.emitR(Opcode::Add, 4, 4, 11);
    b.bind(done);
    b.ret();
    isa::Program p = makeProgram(b, true);

    mem::SparseMemory ma, mb;
    func::FuncSim fast(p, ma);
    func::FuncSim slow(p, mb);
    func::StepRecord rec;
    // Compare at many interleaved checkpoints, not just the end.
    while (!slow.halted()) {
        fast.runFast(97);
        for (int i = 0; i < 97 && slow.step(rec); ++i) {
        }
        ASSERT_EQ(fast.pc(), slow.pc());
        ASSERT_EQ(fast.halted(), slow.halted());
        ASSERT_EQ(fast.callDepth(), slow.callDepth());
        ASSERT_EQ(fast.windowBase(), slow.windowBase());
        for (RegIndex r = 0; r < isa::numIntRegs; ++r)
            ASSERT_EQ(fast.readIntReg(r), slow.readIntReg(r))
                << "r" << unsigned(r) << " at pc " << slow.pc();
    }
    EXPECT_TRUE(fast.halted());
    EXPECT_EQ(fast.readIntReg(4), 144u); // fib(12)
}

} // namespace
