#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/debug_flags.hh"

namespace vca::mem {

Cache::Cache(const CacheParams &params, Cache *next, unsigned memLatency,
             stats::StatGroup *parent)
    : stats::StatGroup(params.name, parent),
      accesses(this, "accesses", "total accesses"),
      hits(this, "hits", "accesses that hit"),
      misses(this, "misses", "accesses that missed"),
      writebacks(this, "writebacks", "dirty lines written back"),
      mshrRejects(this, "mshr_rejects", "accesses rejected: MSHRs full"),
      params_(params), next_(next), memLatency_(memLatency)
{
    if (params_.lineBytes == 0 || (params_.lineBytes & (params_.lineBytes - 1)))
        fatal("cache %s: line size must be a power of two",
              params_.name.c_str());
    if (params_.assoc == 0)
        fatal("cache %s: associativity must be >= 1", params_.name.c_str());
    const std::uint64_t numLines = params_.sizeBytes / params_.lineBytes;
    if (numLines == 0 || numLines % params_.assoc != 0)
        fatal("cache %s: size/line/assoc mismatch", params_.name.c_str());
    numSets_ = numLines / params_.assoc;
    while ((Addr(1) << lineShift_) < params_.lineBytes)
        ++lineShift_;
    if ((numSets_ & (numSets_ - 1)) == 0)
        setMask_ = numSets_ - 1;
    lines_.assign(numLines, Line{});
}

Cycle
Cache::fillLatency(Addr addr, bool write, Cycle now)
{
    if (next_) {
        // A fill is a read from the next level regardless of whether the
        // triggering access was a write (write-allocate).
        AccessResult r = next_->access(addr, false, now);
        (void)write;
        return r.latency;
    }
    return memLatency_;
}

AccessResult
Cache::access(Addr addr, bool write, Cycle now)
{
    const Addr line = lineAddr(addr);
    const size_t set = setIndex(line);
    Line *ways = &lines_[set * params_.assoc];

    // Lazily retire completed in-flight fills.
    if (!inflight_.empty()) {
        for (auto it = inflight_.begin(); it != inflight_.end();) {
            if (it->second <= now)
                it = inflight_.erase(it);
            else
                ++it;
        }
    }

    // Tag check.
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == line) {
            ++accesses;
            ++hits;
            ways[w].lruStamp = ++stamp_;
            if (write)
                ways[w].dirty = true;
            return {true, true, params_.hitLatency};
        }
    }

    // Miss. Merge with an in-flight fill for the same line if present.
    auto inflightIt = inflight_.find(line);
    if (inflightIt != inflight_.end()) {
        ++accesses;
        ++misses;
        DPRINTF(Cache, "%s: miss 0x%llx merged into in-flight fill",
                params_.name.c_str(), (unsigned long long)addr);
        Cycle ready = std::max(inflightIt->second, now + params_.hitLatency);
        return {true, false, ready - now};
    }

    if (inflight_.size() >= params_.mshrs) {
        // No MSHR available: caller must retry. The access still consumed
        // a port but is not counted as a hit or miss.
        ++mshrRejects;
        DPRINTF(Cache, "%s: MSHRs full, rejecting 0x%llx",
                params_.name.c_str(), (unsigned long long)addr);
        return {false, false, 0};
    }

    ++accesses;
    ++misses;
    DPRINTF(Cache, "%s: %s miss 0x%llx", params_.name.c_str(),
            write ? "write" : "read", (unsigned long long)addr);

    // Choose a victim (invalid first, else LRU) and install the new tag.
    Line *victim = &ways[0];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!ways[w].valid) {
            victim = &ways[w];
            break;
        }
        if (ways[w].lruStamp < victim->lruStamp)
            victim = &ways[w];
    }
    if (victim->valid && victim->dirty) {
        ++writebacks;
        DPRINTF(Cache, "%s: writeback 0x%llx", params_.name.c_str(),
                (unsigned long long)(victim->tag * params_.lineBytes));
        if (next_) {
            // Timing of the writeback is off the critical path; we only
            // record the traffic at the next level.
            next_->access(victim->tag * params_.lineBytes, true, now);
        }
    }

    const Cycle fill = fillLatency(addr, write, now);
    const Cycle total = params_.hitLatency + fill;

    victim->valid = true;
    victim->dirty = write;
    victim->tag = line;
    victim->lruStamp = ++stamp_;
    inflight_[line] = now + total;

    return {true, false, total};
}

void
Cache::invalidateAll()
{
    for (Line &l : lines_)
        l = Line{};
    inflight_.clear();
    if (next_)
        next_->invalidateAll();
}

void
Cache::copyStateFrom(const Cache &other)
{
    if (other.numSets_ != numSets_ ||
        other.params_.assoc != params_.assoc ||
        other.params_.lineBytes != params_.lineBytes) {
        panic("cache %s: copyStateFrom across different geometries",
              params_.name.c_str());
    }
    lines_ = other.lines_;
    stamp_ = other.stamp_;
    inflight_.clear();
}

MemSystem::MemSystem(const MemSystemParams &params, stats::StatGroup *parent)
    : stats::StatGroup("mem", parent),
      l2_(params.l2, nullptr, params.memLatency, this),
      il1_(params.il1, &l2_, params.memLatency, this),
      dl1_(params.dl1, &l2_, params.memLatency, this)
{
}

AccessResult
MemSystem::instAccess(Addr addr, Cycle now)
{
    return il1_.access(addr, false, now);
}

AccessResult
MemSystem::dataAccess(Addr addr, bool write, Cycle now)
{
    return dl1_.access(addr, write, now);
}

void
MemSystem::invalidateAll()
{
    il1_.invalidateAll();
    dl1_.invalidateAll();
    // il1_/dl1_ both forward to l2_; idempotent.
}

} // namespace vca::mem
