/**
 * @file
 * Property tests for the hot-path data structures behind the detailed
 * core: the calendar event queue (vs. the std::map it replaced), the
 * fixed-capacity ring buffer (vs. std::deque), and SparseMemory's
 * direct-mapped page-pointer cache (vs. an uncached reference model).
 * These structures carry the bit-identity guarantee of the hot-path
 * rewrite, so each is driven with adversarial traffic — overflow
 * buckets, never-popped past events, wraparound, aliased cache slots,
 * clear() generations — against a trivially correct reference.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "mem/sparse_memory.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/ring_buffer.hh"
#include "sim/rng.hh"

namespace {

using namespace vca;

// ---------------------------------------------------------------------
// CalendarQueue vs. the std::map scheme it replaced
// ---------------------------------------------------------------------

/** The exact structure CalendarQueue displaced, kept as the oracle. */
struct MapQueueRef
{
    std::map<Cycle, std::vector<int>> events;
    size_t size = 0;

    void
    schedule(Cycle when, int v)
    {
        events[when].push_back(v);
        ++size;
    }

    void
    popAt(Cycle when, std::vector<int> &out)
    {
        auto it = events.find(when);
        if (it == events.end())
            return;
        for (int v : it->second)
            out.push_back(v);
        size -= it->second.size();
        events.erase(it);
    }
};

TEST(CalendarQueue, MatchesMapReferenceOnRandomTraffic)
{
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(seed * 131 + 17);
        CalendarQueue<int> q(16); // small horizon: exercise overflow
        MapQueueRef ref;
        Cycle now = 0;
        int next = 0;
        std::vector<int> got, want;
        for (int step = 0; step < 3000; ++step) {
            const auto n = rng.range(0, 3);
            for (std::int64_t i = 0; i < n; ++i) {
                Cycle when;
                if (now > 8 && rng.chance(0.05)) {
                    // In the past relative to the last pop: the map
                    // kept these forever unless their exact cycle came
                    // up again; the calendar queue must agree.
                    when = now - static_cast<Cycle>(rng.range(1, 8));
                } else {
                    // Mostly within the 16-cycle horizon, with a tail
                    // far beyond it (the overflow bucket).
                    when = now + static_cast<Cycle>(rng.range(0, 64));
                }
                q.schedule(when, next);
                ref.schedule(when, next);
                ++next;
            }
            // Advance by 0..5 cycles; skipped cycles' events linger.
            now += static_cast<Cycle>(rng.range(0, 5));
            got.clear();
            want.clear();
            q.popAt(now, got);
            ref.popAt(now, want);
            ASSERT_EQ(got, want)
                << "seed " << seed << " step " << step << " now " << now;
            ASSERT_EQ(q.size(), ref.size);
            ASSERT_EQ(q.empty(), ref.size == 0);
        }
    }
}

TEST(CalendarQueue, MergesOverflowAndRingInScheduleOrder)
{
    CalendarQueue<int> q(16);
    const Cycle target = 40; // beyond the horizon while base is 0
    q.schedule(target, 1);
    q.schedule(target, 2);
    EXPECT_EQ(q.overflowSize(), 2u);

    std::vector<int> out;
    q.popAt(30, out); // advance base: target is now inside the ring
    EXPECT_TRUE(out.empty());
    q.schedule(target, 3);
    q.schedule(target, 4);
    EXPECT_EQ(q.size(), 4u);

    // Ring and overflow entries for the same cycle come back in one
    // globally seq-ordered list, exactly like the map's push order.
    q.popAt(target, out);
    EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.overflowSize(), 0u);
}

TEST(CalendarQueue, PastEventsStayQueuedUntilTheirExactCycle)
{
    CalendarQueue<int> q(16);
    std::vector<int> out;
    q.popAt(100, out);
    q.schedule(90, 7); // already in the past
    q.schedule(100, 8);
    q.popAt(100, out);
    EXPECT_EQ(out, std::vector<int>{8});
    EXPECT_EQ(q.size(), 1u) << "the past event must stay queued";

    // A stale entry sharing a ring slot with a later cycle must not
    // leak into that cycle's pop.
    q.schedule(104, 9);
    q.schedule(104 + q.horizon(), 10); // same slot, different cycle
    out.clear();
    q.popAt(104, out);
    EXPECT_EQ(out, std::vector<int>{9});
    out.clear();
    q.popAt(104 + q.horizon(), out);
    EXPECT_EQ(out, std::vector<int>{10});
}

TEST(CalendarQueue, ResetDropsEverythingAndRoundsHorizon)
{
    CalendarQueue<int> q(100); // rounds to 128
    EXPECT_EQ(q.horizon(), 128u);
    q.schedule(5, 1);
    q.schedule(500, 2);
    EXPECT_EQ(q.size(), 2u);
    q.reset(4);
    EXPECT_EQ(q.horizon(), 4u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.overflowSize(), 0u);
    std::vector<int> out;
    q.popAt(5, out);
    EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------
// RingBuffer vs. std::deque
// ---------------------------------------------------------------------

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(RingBuffer<int>(1).capacity(), 1u);
    EXPECT_EQ(RingBuffer<int>(2).capacity(), 2u);
    EXPECT_EQ(RingBuffer<int>(5).capacity(), 8u);
    EXPECT_EQ(RingBuffer<int>(64).capacity(), 64u);
    EXPECT_EQ(RingBuffer<int>(65).capacity(), 128u);
}

TEST(RingBuffer, MatchesDequeReferenceAcrossWraparound)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        Rng rng(seed * 997 + 3);
        RingBuffer<int> rb(8);
        std::deque<int> ref;
        int next = 0;
        // Enough operations that head_/tail_ wrap the 8-slot store
        // hundreds of times.
        for (int step = 0; step < 20000; ++step) {
            switch (rng.range(0, 2)) {
              case 0:
                if (!rb.full()) {
                    rb.push_back(next);
                    ref.push_back(next);
                    ++next;
                }
                break;
              case 1:
                if (!rb.empty()) {
                    rb.pop_front();
                    ref.pop_front();
                }
                break;
              case 2:
                if (!rb.empty()) {
                    rb.pop_back();
                    ref.pop_back();
                }
                break;
            }
            if (rng.chance(0.002)) {
                rb.clear();
                ref.clear();
            }
            ASSERT_EQ(rb.size(), ref.size());
            ASSERT_EQ(rb.empty(), ref.empty());
            ASSERT_EQ(rb.full(), ref.size() == rb.capacity());
            if (!ref.empty()) {
                ASSERT_EQ(rb.front(), ref.front());
                ASSERT_EQ(rb.back(), ref.back());
            }
            for (size_t i = 0; i < ref.size(); ++i)
                ASSERT_EQ(rb[i], ref[i]) << "index " << i;
            size_t i = 0;
            for (int v : rb)
                ASSERT_EQ(v, ref[i++]);
            ASSERT_EQ(i, ref.size());
        }
    }
}

TEST(RingBuffer, PanicsOnOverflowAndUnderflow)
{
    setQuiet(true);
    RingBuffer<int> rb(2);
    rb.push_back(1);
    rb.push_back(2);
    EXPECT_TRUE(rb.full());
    EXPECT_THROW(rb.push_back(3), PanicError);
    EXPECT_EQ(rb.size(), 2u) << "failed push must not corrupt state";
    EXPECT_EQ(rb.front(), 1);
    EXPECT_EQ(rb.back(), 2);

    RingBuffer<int> empty(2);
    EXPECT_THROW(empty.pop_front(), PanicError);
    EXPECT_THROW(empty.pop_back(), PanicError);
}

// ---------------------------------------------------------------------
// SparseMemory's direct-mapped page-pointer cache
// ---------------------------------------------------------------------

TEST(SparseMemory, PageCacheMatchesUncachedReference)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        Rng rng(seed + 101);
        mem::SparseMemory m;
        std::unordered_map<Addr, std::uint64_t> ref;
        for (int step = 0; step < 40000; ++step) {
            // Pages 0..63 fold 4-way onto the 16 direct-mapped slots,
            // so conflict evictions are constant; a 5% tail of far
            // pages aliases across a wide address range too.
            Addr page = static_cast<Addr>(rng.range(0, 63));
            if (rng.chance(0.05))
                page += Addr(1) << 20;
            const Addr addr = (page << mem::SparseMemory::pageShift) |
                (static_cast<Addr>(rng.range(0, 511)) << 3);
            if (rng.chance(0.5)) {
                const std::uint64_t v = rng.next();
                m.write(addr, v);
                ref[addr] = v;
            } else {
                const auto it = ref.find(addr);
                ASSERT_EQ(m.read(addr),
                          it == ref.end() ? 0u : it->second)
                    << "seed " << seed << " addr " << std::hex << addr;
            }
            if (rng.chance(0.0005)) {
                m.clear();
                ref.clear();
            }
        }
    }
}

TEST(SparseMemory, ClearInvalidatesCachedPagePointers)
{
    mem::SparseMemory m;
    m.write(0x1000, 42);
    EXPECT_EQ(m.read(0x1000), 42u); // now cached
    m.clear();
    // A stale cache slot surviving clear() would hand back 42 from a
    // freed page; the generation bump must force the miss path.
    EXPECT_EQ(m.read(0x1000), 0u);
    EXPECT_EQ(m.allocatedPages(), 0u)
        << "reads must not allocate pages";
    m.write(0x1000, 7);
    EXPECT_EQ(m.read(0x1000), 7u);
    EXPECT_EQ(m.allocatedPages(), 1u);
}

TEST(SparseMemory, ConflictingPagesShareACacheSlot)
{
    mem::SparseMemory m;
    // Pages 0 and 16 map to the same direct-mapped slot (16 slots).
    const Addr a = 0x0;
    const Addr b = Addr(16) << mem::SparseMemory::pageShift;
    m.write(a, 1);
    m.write(b, 2); // evicts a's slot
    EXPECT_EQ(m.read(a), 1u);
    EXPECT_EQ(m.read(b), 2u);
    m.write(a, 3); // evicts b again
    EXPECT_EQ(m.read(b), 2u);
    EXPECT_EQ(m.read(a), 3u);
    EXPECT_EQ(m.allocatedPages(), 2u);
}

} // namespace
