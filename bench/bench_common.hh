/**
 * @file
 * Shared plumbing for the table/figure reproduction benches.
 *
 * Every bench prints the rows/series of one table or figure from the
 * paper's evaluation. Interval lengths are scaled down from the
 * paper's 100M-instruction SimPoints to laptop budgets; set
 * VCA_MEASURE_INSTS / VCA_WARMUP_INSTS (and for the SMT benches
 * VCA_WORKLOADS_2T / VCA_WORKLOADS_4T) to scale up.
 */

#ifndef VCA_BENCH_COMMON_HH
#define VCA_BENCH_COMMON_HH

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/runner.hh"
#include "analysis/workloads.hh"
#include "sim/logging.hh"

namespace vca::bench {

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

inline analysis::RunOptions
defaultOptions()
{
    analysis::RunOptions opts;
    opts.warmupInsts = envU64("VCA_WARMUP_INSTS", 15'000);
    opts.measureInsts = envU64("VCA_MEASURE_INSTS", 150'000);
    // Execution mode for every measured point (the accuracy gate runs
    // benches under VCA_SIM_MODE=sampled and compares against the
    // detailed trajectory).
    if (const char *m = std::getenv("VCA_SIM_MODE"); m && *m) {
        if (!analysis::parseSimMode(m, opts.mode))
            fatal("unknown VCA_SIM_MODE '%s' "
                  "(detailed|simpoint|sampled)", m);
    }
    opts.samplePeriodInsts =
        envU64("VCA_SAMPLE_PERIOD", opts.samplePeriodInsts);
    opts.sampleQuantumInsts =
        envU64("VCA_SAMPLE_QUANTUM", opts.sampleQuantumInsts);
    opts.sampleFuncWarmInsts =
        envU64("VCA_SAMPLE_FUNC_WARM", opts.sampleFuncWarmInsts);
    opts.sampleDetailWarmInsts =
        envU64("VCA_SAMPLE_DETAIL_WARM", opts.sampleDetailWarmInsts);
    return opts;
}

/** The four register-window architectures of Figures 4-6. */
inline const std::vector<cpu::RenamerKind> &
regWindowArchs()
{
    static const std::vector<cpu::RenamerKind> archs = {
        cpu::RenamerKind::Baseline,
        cpu::RenamerKind::IdealWindow,
        cpu::RenamerKind::ConvWindow,
        cpu::RenamerKind::Vca,
    };
    return archs;
}

inline const char *
archLabel(cpu::RenamerKind kind)
{
    switch (kind) {
      case cpu::RenamerKind::Baseline:    return "baseline";
      case cpu::RenamerKind::IdealWindow: return "ideal";
      case cpu::RenamerKind::ConvWindow:  return "regwindow";
      case cpu::RenamerKind::Vca:         return "vca";
    }
    return "?";
}

/**
 * Write one figure's series as CSV into $VCA_CSV_DIR (if set), so the
 * plots can be regenerated with scripts/plot_figures.py.
 */
void writeSeriesCsv(const std::string &slug,
                    const std::vector<unsigned> &physRegs,
                    const std::map<std::string,
                                   std::vector<double>> &series);

/**
 * Write one figure's series as BENCH_<slug>.json into
 * $VCA_BENCH_JSON_DIR (if set): machine-readable results for
 * regression tracking. Inoperable points export as null.
 */
void writeSeriesJson(const std::string &slug,
                     const std::vector<unsigned> &physRegs,
                     const std::map<std::string,
                                    std::vector<double>> &series);

/**
 * Print the `IPC ± CI` table for the sampled points the last
 * sweepSeries() call measured (one row per curve, one column per
 * register-file size; cells average the per-workload sampled IPC and
 * 95% half-width). No-op on detailed runs — detailed bench stdout
 * stays byte-identical.
 */
void printSampledCi(const std::vector<unsigned> &physRegs);

/** Forget the pending sampled-CI entries (figure epilogue). */
void clearSampledCi();

/** Print one figure-style series table (and CSV when enabled). */
inline void
printSeries(const char *title, const char *valueName,
            const std::vector<unsigned> &physRegs,
            const std::map<std::string, std::vector<double>> &series)
{
    std::printf("\n== %s ==\n", title);
    std::printf("%-12s", "arch");
    for (unsigned p : physRegs)
        std::printf(" %9u", p);
    std::printf("   (%s)\n", valueName);
    for (const auto &[name, values] : series) {
        std::printf("%-12s", name.c_str());
        for (double v : values) {
            if (v < 0)
                std::printf(" %9s", "n/a");
            else
                std::printf(" %9.3f", v);
        }
        std::printf("\n");
    }
    printSampledCi(physRegs);

    std::string slug;
    for (const char *c = title; *c && *c != ':'; ++c)
        slug += (*c == ' ') ? '_' : static_cast<char>(
            std::tolower(static_cast<unsigned char>(*c)));
    writeSeriesCsv(slug, physRegs, series);
    writeSeriesJson(slug, physRegs, series);
    clearSampledCi();
}

/**
 * Bench epilogue: the value every bench main() returns. Reports sweep
 * points lost to infrastructure failures (worker crashes, deadlines)
 * after their retry budget — the affected cells already printed as
 * "n/a" — with a stderr summary, and turns them into a nonzero exit
 * code so CI and scripts notice a degraded run. Returns 0 when every
 * point completed.
 */
int finishBench();

/**
 * Print the cycle-accounting breakdown (commit-stall attribution) of
 * one representative run per architecture, so every bench shows where
 * the cycles of its configurations actually go.
 */
void printCycleAccounting(const std::vector<cpu::RenamerKind> &archs,
                          unsigned physRegs,
                          const analysis::RunOptions &opts,
                          const std::string &benchName = "crafty");

/**
 * The shared sweep loop behind every figure: one curve (a SeriesSpec)
 * is an architecture/ABI and its workload list, and the series value
 * at each register-file size is the mean of a per-workload metric.
 * All (spec x size x workload) measurements run as ONE batch on the
 * parallel sweep runner (analysis::SweepRunner::global(), memoized on
 * disk); only metric evaluation and formatting stay serial.
 */
struct SeriesSpec
{
    std::string label;            ///< row name in the printed series
    cpu::RenamerKind kind;
    bool windowed;                ///< which binary ABI the points run
    bool stopOnFirstThread;       ///< SMT methodology (Section 3.2)
    std::vector<std::vector<std::string>> workloads; ///< 1 entry/thread
};

/** Per-workload metric; negative marks the point inoperable. */
using WorkloadMetric = std::function<double(
    const SeriesSpec &spec, const std::vector<std::string> &benches,
    const analysis::Measurement &m)>;

/**
 * Measure every (spec, size, workload) point in one parallel batch and
 * reduce to metric[spec.label][sizeIndex]: the mean across the spec's
 * workloads, or -1 when any workload is inoperable (!Measurement::ok
 * or a negative metric).
 */
std::map<std::string, std::vector<double>>
sweepSeries(const std::vector<SeriesSpec> &specs,
            const std::vector<unsigned> &physRegs,
            const analysis::RunOptions &opts,
            const WorkloadMetric &metric);

/**
 * Sweep the register-window architectures over physical register file
 * sizes. Returns metric[arch][sizeIndex] where the metric is computed
 * per benchmark, normalized to the baseline reference, and averaged
 * over the call-heavy benchmark set. Negative = cannot operate.
 *
 * @param metricIsDcache false: execution time; true: cache accesses
 */
std::map<std::string, std::vector<double>>
regWindowSweep(const std::vector<unsigned> &physRegs,
               const analysis::RunOptions &opts, bool metricIsDcache,
               unsigned normalizePorts = 2);

// ---------------------------------------------------------------------
// SMT machinery (Figures 7 and 8)
// ---------------------------------------------------------------------

/** Workload selection with bench-scaled defaults (env-overridable). */
analysis::WorkloadSelection benchWorkloads();

/**
 * Single-threaded reference execution times: baseline at 256 physical
 * registers running the non-windowed binary (the paper's normalization
 * point for both SMT figures). Cached per process.
 */
const std::map<std::string, double> &singleThreadReference(
    const analysis::RunOptions &opts);

/** The sweep point one SMT workload measurement runs. */
analysis::SweepPoint smtPoint(const std::vector<std::string> &benches,
                              cpu::RenamerKind kind, unsigned physRegs,
                              bool windowedBinaries,
                              const analysis::RunOptions &baseOpts);

/**
 * Weighted speedup of one multiprogrammed workload: the sum over
 * threads of refExecTime / smtExecTime, where execution time is
 * CPI x complete-program path length of the binary each side ran.
 * Returns a negative value when the configuration cannot operate.
 */
double weightedSpeedup(const std::vector<std::string> &benches,
                       cpu::RenamerKind kind, unsigned physRegs,
                       bool windowedBinaries,
                       const analysis::RunOptions &baseOpts);

/** weightedSpeedup() from an already-run workload measurement. */
double weightedSpeedupFrom(const std::vector<std::string> &benches,
                           bool windowedBinaries,
                           const analysis::Measurement &m,
                           const analysis::RunOptions &baseOpts);

/**
 * Cache-traffic metric for one workload: measured data-cache accesses
 * per unit of completed architectural work (sum over threads of
 * committed insts / path length). Ratios of this metric between
 * configurations reproduce the Section 4.3 accounting.
 */
double cacheAccessMetric(const std::vector<std::string> &benches,
                         cpu::RenamerKind kind, unsigned physRegs,
                         bool windowedBinaries,
                         const analysis::RunOptions &baseOpts);

/** cacheAccessMetric() from an already-run workload measurement. */
double cacheAccessMetricFrom(const std::vector<std::string> &benches,
                             bool windowedBinaries,
                             const analysis::Measurement &m);

} // namespace vca::bench

#endif // VCA_BENCH_COMMON_HH
