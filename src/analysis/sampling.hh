/**
 * @file
 * Fast-forward + sampled simulation modes (the non-detailed arms of
 * RunOptions::mode).
 *
 * Both modes interleave the functional core (FuncSim's decoded-BB fast
 * path) with the detailed OoO core:
 *
 *  - SimPoint: cluster BBV intervals into phases (analysis/
 *    simpoint.hh), detail-simulate one representative interval per
 *    phase, and report the phase-weighted IPC blend as the
 *    whole-program estimate.
 *  - Sampled: SMARTS-style periodic sampling — every samplePeriodInsts
 *    per thread, switch the architectural state into a fresh detailed
 *    core, run sampleDetailWarmInsts of detailed warm-up, and measure
 *    a sampleQuantumInsts quantum; aggregate quanta until measureInsts
 *    instructions have been measured or the program ends.
 *
 * Long-lived microarchitectural state (cache tags, predictor tables)
 * lives in a persistent warm model that every fast-forwarded
 * instruction updates (continuous functional warming; see
 * RunOptions::sampleFuncWarmInsts for the tail-only compromise) and
 * that each sample's fresh core adopts via copyStateFrom before
 * switch-in — without it, every sample would restart with cold caches
 * and the sampled estimate would be biased far below the detailed
 * reference.
 *
 * The hand-off obeys the switch-in invariant (OooCpu::switchIn): after
 * transfer, every architectural register the detailed core would read
 * is checked against the functional golden model. Host time spent on
 * the functional side is accounted to HostStats func_* (the accuracy
 * tier's >=5x speedup contract); detailed quanta accumulate into the
 * usual sim_* trajectory.
 */

#ifndef VCA_ANALYSIS_SAMPLING_HH
#define VCA_ANALYSIS_SAMPLING_HH

#include "analysis/experiment.hh"
#include "stats/statistics.hh"

namespace vca::analysis {

/**
 * Run a non-detailed timing measurement (opts.mode is SimPoint or
 * Sampled). Called by runTiming() after it builds the CpuParams, so
 * ablation overrides and seeding behave identically across modes.
 */
Measurement runSampledTiming(
    const std::vector<const isa::Program *> &programs,
    cpu::RenamerKind kind, unsigned physRegs, const RunOptions &opts,
    const cpu::CpuParams &params);

// ---------------------------------------------------------------------
// Confidence-interval estimator (pure functions, unit-tested without
// any simulation; DESIGN.md 5.1 documents the assumptions)
// ---------------------------------------------------------------------

/** Weighted mean of xs (weights w; equal weights = arithmetic mean).
 *  Returns 0 when the total weight is 0. */
double weightedMean(const std::vector<double> &xs,
                    const std::vector<double> &w);

/**
 * Unbiased weighted sample variance (reliability weights): for equal
 * weights this is the classic n-1 estimator. Returns 0 when fewer than
 * two effective samples exist.
 */
double weightedVariance(const std::vector<double> &xs,
                        const std::vector<double> &w);

/**
 * Kish effective sample size (sum w)^2 / sum w^2 — equals n for equal
 * weights, shrinks when a few samples dominate the blend.
 */
double effectiveSampleCount(const std::vector<double> &w);

/**
 * Two-sided 95% critical value of Student's t distribution with @p dof
 * degrees of freedom (table for 1..30, the normal quantile 1.96
 * beyond). dof < 1 returns the dof=1 value (12.706).
 */
double tCritical95(double dof);

/**
 * Mean, variance and the 95% CLT/t confidence interval of per-sample
 * CPIs. Degenerate cases: a single sample yields ciUnbounded (no
 * variance estimate exists; the bounds collapse to the mean);
 * identical samples yield a zero-width interval. The warmth means are
 * filled from the records' transplant summaries.
 */
SamplingSummary computeSamplingSummary(
    const std::vector<SampleRecord> &records);

/**
 * "sampling" statistics group, dumped with --stats and exported as the
 * stats-JSON `sampling` block's scalar mirror. Populated from a
 * finished Measurement (the measurement itself stays the source of
 * truth for caching/serialization).
 */
class SamplingStats : public stats::StatGroup
{
  public:
    explicit SamplingStats(stats::StatGroup *parent = nullptr);

    /** Copy one measurement's sampling summary into the scalars. */
    void populate(const Measurement &m);

    stats::Scalar samples;
    stats::Scalar meanCpi;
    stats::Scalar cpiVariance;
    stats::Scalar ciLoCpi;
    stats::Scalar ciHiCpi;
    stats::Scalar ciUnbounded;
    stats::Scalar ipcCiLo;
    stats::Scalar ipcCiHi;
    stats::Scalar meanTagValidFraction;
    stats::Scalar meanBpredTableOccupancy;
};

} // namespace vca::analysis

#endif // VCA_ANALYSIS_SAMPLING_HH
