/**
 * @file
 * Unit tests for the hybrid branch predictor and the return-address
 * stack, including speculative-state checkpoint/restore.
 */

#include <gtest/gtest.h>

#include "bpred/bpred.hh"

namespace {

using namespace vca;
using namespace vca::bpred;

class BPredTest : public ::testing::Test
{
  protected:
    BPredTest() : root_("root"), bp_(BPredParams{}, 2, &root_) {}

    stats::StatGroup root_;
    BranchPredictor bp_;
};

TEST_F(BPredTest, LearnsAlwaysTaken)
{
    const Addr pc = 0x40;
    BPredCheckpoint ckpt;
    for (int i = 0; i < 8; ++i) {
        bool pred = bp_.predict(0, pc, ckpt);
        bp_.update(0, pc, true, ckpt.history);
        (void)pred;
    }
    EXPECT_TRUE(bp_.predict(0, pc, ckpt));
}

TEST_F(BPredTest, LearnsAlternatingViaGshare)
{
    // A strictly alternating branch is mispredicted by bimodal but
    // learnable with global history; the hybrid must converge.
    const Addr pc = 0x80;
    bool taken = false;
    unsigned wrongLate = 0;
    BPredCheckpoint ckpt;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        const bool pred = bp_.predict(0, pc, ckpt);
        bp_.update(0, pc, taken, ckpt.history);
        if (pred != taken) {
            // What the pipeline does on a mispredict: squash and
            // repair the speculative history with the real outcome.
            bp_.repairHistory(0, ckpt, taken);
            if (i >= 200)
                ++wrongLate;
        }
    }
    EXPECT_LT(wrongLate, 20u);
}

TEST_F(BPredTest, HistoryRestoreAfterSquash)
{
    const Addr pc = 0x100;
    BPredCheckpoint ckpt1, ckpt2;
    bp_.predict(0, pc, ckpt1);
    bp_.predict(0, pc + 1, ckpt2);
    // Squash the second prediction: restoring ckpt2 must give the same
    // history as immediately after the first prediction.
    bp_.restore(0, ckpt2);
    BPredCheckpoint probe = bp_.snapshot(0);
    EXPECT_EQ(probe.history, ckpt2.history);
}

TEST_F(BPredTest, RasPushPopLifo)
{
    BPredCheckpoint c;
    bp_.pushRas(0, 100, c);
    bp_.pushRas(0, 200, c);
    bp_.pushRas(0, 300, c);
    EXPECT_EQ(bp_.popRas(0, c), 300u);
    EXPECT_EQ(bp_.popRas(0, c), 200u);
    EXPECT_EQ(bp_.popRas(0, c), 100u);
}

TEST_F(BPredTest, RasPerThread)
{
    BPredCheckpoint c;
    bp_.pushRas(0, 111, c);
    bp_.pushRas(1, 222, c);
    EXPECT_EQ(bp_.popRas(0, c), 111u);
    EXPECT_EQ(bp_.popRas(1, c), 222u);
}

TEST_F(BPredTest, RasRestoreUndoesSpeculativePop)
{
    BPredCheckpoint before;
    bp_.pushRas(0, 123, before);
    BPredCheckpoint popCkpt;
    EXPECT_EQ(bp_.popRas(0, popCkpt), 123u);
    // The pop was down a wrong path: restore and pop again.
    bp_.restore(0, popCkpt);
    BPredCheckpoint c;
    EXPECT_EQ(bp_.popRas(0, c), 123u);
}

TEST_F(BPredTest, RasRestoreUndoesSpeculativePush)
{
    BPredCheckpoint c;
    bp_.pushRas(0, 42, c);
    BPredCheckpoint pushCkpt;
    bp_.pushRas(0, 999, pushCkpt); // wrong-path push clobbers nothing yet
    bp_.restore(0, pushCkpt);
    EXPECT_EQ(bp_.popRas(0, c), 42u);
}

TEST_F(BPredTest, RasWrapsWithoutCrashing)
{
    BPredCheckpoint c;
    for (Addr i = 0; i < 100; ++i)
        bp_.pushRas(0, 1000 + i, c);
    // Deepest pushes overwrote oldest; the most recent 16 are intact.
    for (Addr i = 0; i < 16; ++i)
        EXPECT_EQ(bp_.popRas(0, c), 1000 + 99 - i);
}

} // namespace
