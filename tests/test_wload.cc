/**
 * @file
 * Tests for the workload substrate: assembler fixups, generated-program
 * well-formedness, two-ABI equivalence (same results, windowed path is
 * shorter), determinism, and Table-2-style path-length ratios.
 */

#include <gtest/gtest.h>

#include "func/func_sim.hh"
#include "sim/logging.hh"
#include "wload/asm_builder.hh"
#include "wload/generator.hh"
#include "wload/profile.hh"

namespace {

using namespace vca;
using wload::AsmBuilder;
using wload::BenchProfile;

TEST(AsmBuilder, ForwardAndBackwardBranches)
{
    AsmBuilder b;
    auto fwd = b.newLabel();
    auto back = b.newLabel();
    b.bind(back);
    b.nop();
    b.branch(isa::Opcode::Beq, 1, 2, fwd);
    b.branch(isa::Opcode::Bne, 1, 2, back);
    b.bind(fwd);
    b.halt();
    auto code = b.seal();
    ASSERT_EQ(code.size(), 4u);
    EXPECT_EQ(isa::decode(code[1]).imm, 1);  // to 'fwd' at 3: 3-(1+1)
    EXPECT_EQ(isa::decode(code[2]).imm, -3); // to 'back' at 0: 0-(2+1)
}

TEST(AsmBuilder, UnboundLabelPanics)
{
    AsmBuilder b;
    auto l = b.newLabel();
    b.jmp(l);
    EXPECT_THROW(b.seal(), PanicError);
}

TEST(AsmBuilder, LiProducesExactConstants)
{
    const std::uint64_t values[] = {
        0, 1, 42, 8191, 8192, -1ull, 0x1000'0000ull,
        isa::layout::stackTop, isa::layout::regSpaceBase,
        0xdeadbeefcafebabeull,
    };
    for (std::uint64_t v : values) {
        AsmBuilder b;
        b.li(5, v);
        b.halt();
        isa::Program p;
        p.name = "li";
        p.code = b.seal();
        p.finalize();
        mem::SparseMemory m;
        func::FuncSim sim(p, m);
        sim.run();
        EXPECT_EQ(sim.readIntReg(5), v) << "value " << std::hex << v;
    }
}

// ---------------------------------------------------------------------
// Generated programs
// ---------------------------------------------------------------------

class GeneratorTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GeneratorTest, BothAbisRunToCompletionWithEqualResults)
{
    const BenchProfile &prof = wload::profileByName(GetParam());

    const isa::Program *pw = wload::cachedProgram(prof, true);
    const isa::Program *pn = wload::cachedProgram(prof, false);
    ASSERT_TRUE(pw->windowedAbi);
    ASSERT_FALSE(pn->windowedAbi);

    mem::SparseMemory mw, mn;
    func::FuncSim fw(*pw, mw), fn(*pn, mn);
    const auto sw = fw.run(400'000'000);
    const auto sn = fn.run(400'000'000);
    ASSERT_TRUE(fw.halted()) << prof.name << " windowed did not halt";
    ASSERT_TRUE(fn.halted()) << prof.name << " non-windowed did not halt";

    // Same dynamic work: identical call counts and conditional-branch
    // outcome counts (control flow must match exactly).
    EXPECT_EQ(sw.calls, sn.calls);
    EXPECT_EQ(sw.condBranches, sn.condBranches);
    EXPECT_EQ(sw.takenCondBranches, sn.takenCondBranches);

    // The windowed path must be strictly shorter (it drops the explicit
    // save/restore code) and the ratio must be in a sane band.
    EXPECT_LT(sw.insts, sn.insts);
    const double ratio = double(sw.insts) / double(sn.insts);
    EXPECT_GT(ratio, 0.6) << prof.name;
    EXPECT_LT(ratio, 1.0) << prof.name;

    // Loads/stores: windowed has strictly fewer (no spill/fill code).
    EXPECT_LT(sw.loads, sn.loads);
    EXPECT_LT(sw.stores, sn.stores);
}

INSTANTIATE_TEST_SUITE_P(AllCallHeavy, GeneratorTest,
                         ::testing::Values("gzip_graphic", "crafty",
                                           "perlbmk_535", "vortex_2",
                                           "twolf", "mesa", "equake"));

TEST(Generator, Deterministic)
{
    const BenchProfile &prof = wload::profileByName("crafty");
    const isa::Program a = wload::generateProgram(prof, true);
    const isa::Program b = wload::generateProgram(prof, true);
    EXPECT_EQ(a.code, b.code);
    ASSERT_EQ(a.data.size(), b.data.size());
    for (size_t i = 0; i < a.data.size(); ++i) {
        EXPECT_EQ(a.data[i].base, b.data[i].base);
        EXPECT_EQ(a.data[i].words, b.data[i].words);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    BenchProfile p = wload::profileByName("crafty");
    const isa::Program a = wload::generateProgram(p, true);
    p.seed += 1;
    const isa::Program b = wload::generateProgram(p, true);
    EXPECT_NE(a.code, b.code);
}

TEST(Generator, CallHeavyProfilesCallFrequentlyEnough)
{
    // Paper Section 3.1: register-window benchmarks must call at least
    // once every 500 instructions.
    for (const BenchProfile &prof : wload::regWindowProfiles()) {
        mem::SparseMemory m;
        func::FuncSim sim(*wload::cachedProgram(prof, false), m);
        const auto s = sim.run(3'000'000);
        ASSERT_GT(s.calls, 0u) << prof.name;
        const double instsPerCall = double(s.insts) / double(s.calls);
        EXPECT_LT(instsPerCall, 500.0) << prof.name;
    }
}

TEST(Generator, ProgramsAreLongEnoughForTimingRuns)
{
    for (const char *name : {"twolf", "swim", "vortex_2"}) {
        const BenchProfile &prof = wload::profileByName(name);
        mem::SparseMemory m;
        func::FuncSim sim(*wload::cachedProgram(prof, true), m);
        const auto s = sim.run(400'000'000);
        EXPECT_TRUE(sim.halted()) << name;
        EXPECT_GT(s.insts, 400'000u) << name;
    }
}

TEST(Generator, ProfileTableShape)
{
    const auto &all = wload::spec2000Profiles();
    EXPECT_EQ(all.size(), 22u);
    EXPECT_EQ(wload::regWindowProfiles().size(), 15u);
    unsigned fp = 0;
    for (const auto &p : all)
        fp += p.isFloat ? 1 : 0;
    EXPECT_EQ(fp, 10u);
}

TEST(Generator, UnknownProfileNameIsFatal)
{
    EXPECT_THROW(wload::profileByName("not_a_benchmark"), FatalError);
}

} // namespace

TEST(Generator, AllProfilesGenerateRunnableCodeInBothAbis)
{
    // Structural smoke over the full benchmark universe: every profile
    // must produce well-formed code under both ABIs (seal() panics on
    // bad fixups) that executes cleanly for a while.
    for (const BenchProfile &prof : wload::spec2000Profiles()) {
        for (bool windowed : {false, true}) {
            const isa::Program *prog =
                wload::cachedProgram(prof, windowed);
            ASSERT_GT(prog->size(), 100u) << prof.name;
            ASSERT_TRUE(prog->finalized());
            EXPECT_EQ(prog->windowedAbi, windowed);
            mem::SparseMemory m;
            func::FuncSim sim(*prog, m);
            const auto s = sim.run(50'000);
            EXPECT_EQ(s.insts, 50'000u)
                << prof.name << " halted too early";
        }
    }
}

TEST(Generator, WindowedBinaryIsStaticallySmaller)
{
    // The windowed binary drops the callee-save prologue/epilogue code.
    for (const char *name : {"vortex_2", "perlbmk_535", "crafty"}) {
        const BenchProfile &prof = wload::profileByName(name);
        EXPECT_LT(wload::cachedProgram(prof, true)->size(),
                  wload::cachedProgram(prof, false)->size())
            << name;
    }
}
