/**
 * @file
 * Merged physical register file: 64-bit values plus ready bits and a
 * per-register waiter count used by the wakeup logic. The paper keeps
 * the physical register file design unchanged across all four
 * architectures (Section 1), so this one class serves every renamer.
 */

#ifndef VCA_CPU_PHYS_REGFILE_HH
#define VCA_CPU_PHYS_REGFILE_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vca::cpu {

class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned numRegs)
        : values_(numRegs, 0), ready_(numRegs, false)
    {
    }

    unsigned numRegs() const { return values_.size(); }

    std::uint64_t
    read(PhysRegIndex reg) const
    {
        return values_[check(reg)];
    }

    void
    write(PhysRegIndex reg, std::uint64_t value)
    {
        values_[check(reg)] = value;
    }

    bool isReady(PhysRegIndex reg) const { return ready_[check(reg)]; }

    void setReady(PhysRegIndex reg, bool r = true)
    {
        ready_[check(reg)] = r;
    }

  private:
    // Rename hands out indices it validated against the file size, so
    // reads/writes only guard the invalid-sentinel case; ready_ stores
    // bytes, not vector<bool> bits, because the wakeup loop hammers it.
    size_t
    check(PhysRegIndex reg) const
    {
        if (reg < 0 || static_cast<size_t>(reg) >= values_.size())
            panic("physical register index %d invalid", int(reg));
        return static_cast<size_t>(reg);
    }

    std::vector<std::uint64_t> values_;
    std::vector<std::uint8_t> ready_;
};

} // namespace vca::cpu

#endif // VCA_CPU_PHYS_REGFILE_HH
